package ingest

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// edgeSet is the one-at-a-time reference model: a plain set of canonical
// edges mutated in arrival order.
type edgeSet map[uint64]graph.Edge

func (s edgeSet) apply(m Mutation) {
	e := m.Edge.Canon()
	if e.U == e.V {
		return
	}
	if m.Op == OpAdd {
		s[e.Key()] = e
	} else {
		delete(s, e.Key())
	}
}

func (s edgeSet) has(u, v uint32) bool {
	_, ok := s[graph.Edge{U: u, V: v}.Canon().Key()]
	return ok
}

func (s edgeSet) clone() edgeSet {
	c := make(edgeSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// TestCoalesceModel is the coalescer's differential suite: random
// mutation streams over a small vertex universe (lots of collisions,
// cancellation pairs, dedups, del-then-add flips) must produce a batch
// whose one-shot application lands on exactly the state reached by
// applying the stream one mutation at a time in arrival order.
func TestCoalesceModel(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		seed := int64(0xC0A1 + trial)
		rng := rand.New(rand.NewSource(seed))

		base := make(edgeSet)
		for i := 0; i < rng.Intn(30); i++ {
			base.apply(Mutation{Op: OpAdd, Edge: graph.Edge{U: uint32(rng.Intn(8)), V: uint32(rng.Intn(8))}})
		}

		muts := make([]Mutation, rng.Intn(60))
		for i := range muts {
			op := OpAdd
			if rng.Intn(2) == 1 {
				op = OpDel
			}
			muts[i] = Mutation{Op: op, Edge: graph.Edge{U: uint32(rng.Intn(8)), V: uint32(rng.Intn(8))}}
		}

		want := base.clone()
		for _, m := range muts {
			want.apply(m)
		}

		adds, dels := Coalesce(muts, base.has)
		got := base.clone()
		for _, e := range dels {
			got.apply(Mutation{Op: OpDel, Edge: e})
		}
		for _, e := range adds {
			got.apply(Mutation{Op: OpAdd, Edge: e})
		}

		if len(got) != len(want) {
			t.Fatalf("seed %#x: coalesced state has %d edges, sequential has %d", seed, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("seed %#x: edge %v in sequential state but not after coalesced batch", seed, want[k])
			}
		}

		// Every surviving op must be effective against base: no redundant
		// adds of present edges or deletes of absent ones reach the WAL.
		for _, e := range adds {
			if base.has(e.U, e.V) {
				t.Fatalf("seed %#x: coalesced add of already-present edge %v", seed, e)
			}
		}
		for _, e := range dels {
			if !base.has(e.U, e.V) {
				t.Fatalf("seed %#x: coalesced delete of absent edge %v", seed, e)
			}
		}
	}
}

func TestCoalesceSemantics(t *testing.T) {
	e := graph.Edge{U: 1, V: 2}
	has := func(bool) func(u, v uint32) bool {
		return func(u, v uint32) bool { return false }
	}

	// add+delete of an absent edge cancels to nothing.
	adds, dels := Coalesce([]Mutation{{OpAdd, e}, {OpDel, e}}, has(false))
	if len(adds)+len(dels) != 0 {
		t.Fatalf("add+del pair survived coalescing: adds=%v dels=%v", adds, dels)
	}

	// duplicates dedup to one op.
	adds, dels = Coalesce([]Mutation{{OpAdd, e}, {OpAdd, e}, {OpAdd, e}}, nil)
	if len(adds) != 1 || len(dels) != 0 {
		t.Fatalf("triplicate add coalesced to adds=%v dels=%v", adds, dels)
	}

	// last op wins regardless of orientation: del(2,1) after add(1,2).
	adds, dels = Coalesce([]Mutation{{OpAdd, e}, {OpDel, graph.Edge{U: 2, V: 1}}}, nil)
	if len(adds) != 0 || len(dels) != 1 {
		t.Fatalf("LWW across orientations: adds=%v dels=%v", adds, dels)
	}

	// presence pruning: add of a present edge is dropped.
	adds, dels = Coalesce([]Mutation{{OpAdd, e}}, func(u, v uint32) bool { return true })
	if len(adds)+len(dels) != 0 {
		t.Fatalf("no-op add survived presence pruning: adds=%v dels=%v", adds, dels)
	}

	// self-loops vanish.
	adds, dels = Coalesce([]Mutation{{OpAdd, graph.Edge{U: 3, V: 3}}}, nil)
	if len(adds)+len(dels) != 0 {
		t.Fatalf("self-loop survived: adds=%v dels=%v", adds, dels)
	}
}

// TestFromBatchBothLists pins the mixed-request contract: an edge named
// in both the adds and dels of one request ends up present, matching
// the batch applier's dels-before-adds order.
func TestFromBatchBothLists(t *testing.T) {
	e := graph.Edge{U: 4, V: 7}
	muts := FromBatch([]graph.Edge{e}, []graph.Edge{e})
	adds, dels := Coalesce(muts, func(u, v uint32) bool { return false })
	if len(adds) != 1 || len(dels) != 0 {
		t.Fatalf("edge in both lists coalesced to adds=%v dels=%v, want one add", adds, dels)
	}
}

// applyRecorder is a controllable ApplyFunc: it logs each flush's
// mutations, assigns monotonic versions, and can be gated so flushes
// block until the test releases them.
type applyRecorder struct {
	mu      sync.Mutex
	flushes [][]Mutation
	version uint64
	gate    chan struct{} // non-nil: each Apply waits for one token
	began   chan struct{} // non-nil: signaled when an Apply starts
	delay   time.Duration // simulated group-commit cost (fsync stand-in)
	err     error
}

func (a *applyRecorder) apply(ctx context.Context, muts []Mutation) (Applied, error) {
	if a.began != nil {
		a.began <- struct{}{}
	}
	if a.gate != nil {
		<-a.gate
	}
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return Applied{}, a.err
	}
	cp := make([]Mutation, len(muts))
	copy(cp, muts)
	a.flushes = append(a.flushes, cp)
	adds, dels := Coalesce(muts, nil)
	if len(adds)+len(dels) > 0 {
		a.version++
	}
	return Applied{Version: a.version, Adds: len(adds), Dels: len(dels)}, nil
}

func mut(u, v uint32) []Mutation {
	return []Mutation{{Op: OpAdd, Edge: graph.Edge{U: u, V: v}}}
}

// TestPipelineGroupCommit holds the first flush open while more
// producers queue up, then verifies the backlog lands as one flush and
// every producer is acked with the version its mutations became
// visible at.
func TestPipelineGroupCommit(t *testing.T) {
	rec := &applyRecorder{gate: make(chan struct{}), began: make(chan struct{}, 16)}
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	p := New(Config{Name: "g", Apply: rec.apply, Metrics: m})
	defer p.Close(context.Background())

	ctx := context.Background()
	var wg sync.WaitGroup
	versions := make([]uint64, 10)
	submit := func(i int) {
		defer wg.Done()
		ap, err := p.Submit(ctx, mut(uint32(i), uint32(i)+100))
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
			return
		}
		versions[i] = ap.Version
	}

	wg.Add(1)
	go submit(0)
	<-rec.began // first flush (just mutation 0) is now blocked in Apply

	wg.Add(9)
	done := make(chan struct{})
	go func() {
		for i := 1; i < 10; i++ {
			go submit(i)
		}
		// Wait for all 9 to be queued before releasing the gate.
		for reg.Gauge("truss_ingest_queue_depth", "", "graph", "g").Value() < 9 {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	<-done
	rec.gate <- struct{}{} // release flush 1
	<-rec.began            // flush 2 begins with the 9-mutation backlog
	rec.gate <- struct{}{}
	wg.Wait()

	if n := len(rec.flushes); n != 2 {
		t.Fatalf("expected 2 flushes (1 then group-committed 9), got %d: %v", n, rec.flushes)
	}
	if len(rec.flushes[1]) != 9 {
		t.Fatalf("second flush group-committed %d mutations, want 9", len(rec.flushes[1]))
	}
	if versions[0] != 1 {
		t.Fatalf("first producer acked version %d, want 1", versions[0])
	}
	for i := 1; i < 10; i++ {
		if versions[i] != 2 {
			t.Fatalf("producer %d acked version %d, want the shared flush version 2", i, versions[i])
		}
	}

	if got := m.submitted.Value(); got != 10 {
		t.Fatalf("truss_ingest_submitted_total = %d, want 10", got)
	}
	if got := m.applied.Value(); got != 10 {
		t.Fatalf("truss_ingest_applied_total = %d, want 10", got)
	}
	if got := m.flushes(FlushDrain).Value(); got != 2 {
		t.Fatalf("drain flushes = %d, want 2", got)
	}
	if d := reg.Gauge("truss_ingest_queue_depth", "", "graph", "g").Value(); d != 0 {
		t.Fatalf("queue depth after quiescence = %d, want 0", d)
	}
}

// TestPipelineSizeTrigger pins the size trigger: with MaxBatch 4 and 8
// queued mutations, the backlog drains as two size-triggered flushes.
func TestPipelineSizeTrigger(t *testing.T) {
	rec := &applyRecorder{gate: make(chan struct{}), began: make(chan struct{}, 16)}
	m := NewMetrics(obs.NewRegistry())
	p := New(Config{Name: "g", Apply: rec.apply, MaxBatch: 4, Metrics: m})
	defer p.Close(context.Background())

	ctx := context.Background()
	if _, err := p.SubmitAsync(ctx, mut(0, 100)); err != nil {
		t.Fatal(err)
	}
	<-rec.began
	var chans []<-chan Outcome
	for i := 1; i <= 8; i++ {
		ch, err := p.SubmitAsync(ctx, mut(uint32(i), uint32(i)+100))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i := 0; i < 3; i++ { // release flush 1, then the two size flushes
		rec.gate <- struct{}{}
		if i < 2 {
			<-rec.began
		}
	}
	for _, ch := range chans {
		if out := <-ch; out.Err != nil {
			t.Fatal(out.Err)
		}
	}
	if n := len(rec.flushes); n != 3 {
		t.Fatalf("expected 3 flushes, got %d", n)
	}
	if len(rec.flushes[1]) != 4 || len(rec.flushes[2]) != 4 {
		t.Fatalf("size-triggered flushes of %d and %d mutations, want 4 and 4",
			len(rec.flushes[1]), len(rec.flushes[2]))
	}
	if got := m.flushes(FlushSize).Value(); got != 2 {
		t.Fatalf("size flushes = %d, want 2", got)
	}
}

// TestPipelineWindowTrigger pins the timed window: with a flush
// interval set, a lone mutation waits out the window (reason "window")
// instead of flushing on drain.
func TestPipelineWindowTrigger(t *testing.T) {
	rec := &applyRecorder{}
	m := NewMetrics(obs.NewRegistry())
	p := New(Config{Name: "g", Apply: rec.apply, FlushInterval: 5 * time.Millisecond, Metrics: m})
	defer p.Close(context.Background())

	if _, err := p.Submit(context.Background(), mut(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := m.flushes(FlushWindow).Value(); got != 1 {
		t.Fatalf("window flushes = %d, want 1", got)
	}
	if got := m.flushes(FlushDrain).Value(); got != 0 {
		t.Fatalf("drain flushes = %d, want 0 when an interval is set", got)
	}
}

// TestPipelineFlushBarrier verifies Flush forces queued work out
// immediately (reason "sync", overriding an hour-long window) and
// reports the resulting version even when the barrier itself carries no
// mutations.
func TestPipelineFlushBarrier(t *testing.T) {
	rec := &applyRecorder{}
	m := NewMetrics(obs.NewRegistry())
	p := New(Config{Name: "g", Apply: rec.apply, FlushInterval: time.Hour, Metrics: m})
	defer p.Close(context.Background())

	ctx := context.Background()
	ch, err := p.SubmitAsync(ctx, mut(1, 101))
	if err != nil {
		t.Fatal(err)
	}
	barrier, err := p.Flush(ctx) // the 1h window would otherwise hold the mutation
	if err != nil {
		t.Fatal(err)
	}
	out := <-ch
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Applied.Version != barrier.Version || barrier.Version != 1 {
		t.Fatalf("barrier version %d, mutation version %d, want both 1", barrier.Version, out.Applied.Version)
	}
	if got := m.flushes(FlushSync).Value(); got != 1 {
		t.Fatalf("sync flushes = %d, want 1", got)
	}

	// An empty barrier still reports the current version without a bump.
	barrier, err = p.Flush(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if barrier.Version != 1 {
		t.Fatalf("empty barrier version = %d, want 1", barrier.Version)
	}
	if got := m.flushes(FlushSync).Value(); got != 2 {
		t.Fatalf("sync flushes = %d, want 2", got)
	}
}

// TestPipelineClose: close flushes the backlog, later submits fail with
// ErrClosed, and double close is safe.
func TestPipelineClose(t *testing.T) {
	rec := &applyRecorder{}
	p := New(Config{Name: "g", Apply: rec.apply})
	ch, err := p.SubmitAsync(context.Background(), mut(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-ch:
		if out.Err != nil {
			t.Fatalf("queued mutation lost at close: %v", out.Err)
		}
	default:
		t.Fatal("close returned before flushing the queued mutation")
	}
	if _, err := p.Submit(context.Background(), mut(3, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineApplyError fans the flush error to every waiting producer.
func TestPipelineApplyError(t *testing.T) {
	boom := errors.New("disk on fire")
	rec := &applyRecorder{err: boom}
	m := NewMetrics(obs.NewRegistry())
	p := New(Config{Name: "g", Apply: rec.apply, Metrics: m})
	defer p.Close(context.Background())
	if _, err := p.Submit(context.Background(), mut(1, 2)); !errors.Is(err, boom) {
		t.Fatalf("submit error = %v, want %v", err, boom)
	}
	if got := m.failures.Value(); got != 1 {
		t.Fatalf("flush failures = %d, want 1", got)
	}
}

// TestPipelineSubmitContext: a producer whose context expires while
// waiting gets ctx.Err, but its mutation still lands.
func TestPipelineSubmitContext(t *testing.T) {
	rec := &applyRecorder{gate: make(chan struct{}), began: make(chan struct{}, 16)}
	p := New(Config{Name: "g", Apply: rec.apply})
	defer p.Close(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Submit(ctx, mut(1, 2))
		errc <- err
	}()
	<-rec.began
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("submit under cancelled ctx = %v, want context.Canceled", err)
	}
	rec.gate <- struct{}{}
	if err := p.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(rec.flushes) != 1 || len(rec.flushes[0]) != 1 {
		t.Fatalf("cancelled producer's mutation did not apply: %v", rec.flushes)
	}
}

// TestPipelineConcurrentStress hammers one pipeline from many producers
// (run under -race in CI) and checks conservation: every submitted
// mutation is applied by exactly one flush, and versions ack
// monotonically per producer.
func TestPipelineConcurrentStress(t *testing.T) {
	// The delay stands in for the fsync each group commit amortizes:
	// while one flush is inside it, concurrent producers pile into the
	// queue and the next flush picks them all up.
	rec := &applyRecorder{delay: 200 * time.Microsecond}
	m := NewMetrics(obs.NewRegistry())
	p := New(Config{Name: "g", Apply: rec.apply, MaxBatch: 64, Metrics: m})

	const producers, perProducer = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var last uint64
			for i := 0; i < perProducer; i++ {
				ap, err := p.Submit(context.Background(), mut(uint32(w), uint32(1000+i)))
				if err != nil {
					t.Errorf("producer %d: %v", w, err)
					return
				}
				if ap.Version < last {
					t.Errorf("producer %d: version went backwards %d -> %d", w, last, ap.Version)
					return
				}
				last = ap.Version
			}
		}(w)
	}
	wg.Wait()
	if err := p.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	total := 0
	for _, f := range rec.flushes {
		total += len(f)
	}
	if want := producers * perProducer; total != want {
		t.Fatalf("flushes applied %d mutations, want %d", total, want)
	}
	if got := m.submitted.Value(); got != int64(producers*perProducer) {
		t.Fatalf("submitted = %d, want %d", got, producers*perProducer)
	}
	if len(rec.flushes) >= producers*perProducer {
		t.Fatalf("no group commit happened: %d flushes for %d mutations", len(rec.flushes), producers*perProducer)
	}
	t.Logf("group commit: %d mutations in %d flushes (%.1f avg)",
		total, len(rec.flushes), float64(total)/float64(len(rec.flushes)))
}
