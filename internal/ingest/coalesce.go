package ingest

import "repro/internal/graph"

// Coalesce folds an arrival-ordered mutation stream into the minimal
// add/delete batch with the same effect: duplicates dedup, the last
// operation per edge wins (so add→del and del→add reduce to the final
// op), and self-loops vanish. When has is non-nil it reports current
// edge presence, letting Coalesce also drop final ops that are no-ops
// against the live graph — an add of a present edge, a delete of an
// absent one, and in particular an add+delete pair over an absent edge,
// which truly cancels to nothing.
//
// Applying the result as one batch is equivalent to applying muts one
// at a time in order: only the final op per edge can affect the final
// graph, intermediate states are observable by no one (every producer
// in the flush is acked with the same post-flush version), and the
// batch applier tolerates redundant ops — deletes of absent edges and
// adds of present ones are no-ops there too, so pruning them changes
// nothing. The differential tests pin this equivalence on randomized
// interleavings.
//
// Result order follows each edge's first appearance in muts, keeping
// coalesced WAL records deterministic for a given arrival order.
func Coalesce(muts []Mutation, has func(u, v uint32) bool) (adds, dels []graph.Edge) {
	if len(muts) == 0 {
		return nil, nil
	}
	final := make(map[uint64]Op, len(muts))
	order := make([]graph.Edge, 0, len(muts))
	for _, m := range muts {
		e := m.Edge.Canon()
		if e.U == e.V {
			continue
		}
		k := e.Key()
		if _, seen := final[k]; !seen {
			order = append(order, e)
		}
		final[k] = m.Op
	}
	for _, e := range order {
		op := final[e.Key()]
		if has != nil {
			if present := has(e.U, e.V); present == (op == OpAdd) {
				continue
			}
		}
		if op == OpAdd {
			adds = append(adds, e)
		} else {
			dels = append(dels, e)
		}
	}
	return adds, dels
}

// FromBatch converts one request's add/delete lists into a mutation
// stream, deletes first. That matches the batch applier's semantics —
// it processes deletions before insertions, so an edge named in both
// lists ends up present — because with deletes first, the edge's add is
// the last op and wins the coalesce.
func FromBatch(adds, dels []graph.Edge) []Mutation {
	muts := make([]Mutation, 0, len(adds)+len(dels))
	for _, e := range dels {
		muts = append(muts, Mutation{Op: OpDel, Edge: e})
	}
	for _, e := range adds {
		muts = append(muts, Mutation{Op: OpAdd, Edge: e})
	}
	return muts
}
