package ingest

import "repro/internal/obs"

// Metrics is the truss_ingest_* instrument panel, shared by every
// pipeline on a server so the families register once. The coalesce
// ratio is derived by the reader as
// truss_ingest_applied_total / truss_ingest_submitted_total — the gap
// between them is exactly the work the coalescer made disappear.
type Metrics struct {
	reg *obs.Registry

	submitted *obs.Counter   // raw mutations collected into flushes
	applied   *obs.Counter   // coalesced mutations that survived to Apply
	flushSize *obs.Histogram // mutations per flush
	flushDur  *obs.Histogram // wall time per flush (group commit incl. fsync)
	failures  *obs.Counter   // flushes whose Apply returned an error
	byReason  map[string]*obs.Counter
}

// flushSizeBuckets covers flush batch sizes from a lone mutation up to
// DefaultMaxBatch in powers of two.
var flushSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// NewMetrics registers the ingest metric families on reg (nil selects
// obs.Default()). Per-reason flush counters are pre-registered so every
// reason appears in the exposition from the first scrape.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.Default()
	}
	m := &Metrics{
		reg: reg,
		submitted: reg.Counter("truss_ingest_submitted_total",
			"Raw mutations collected into ingestion flushes, before coalescing."),
		applied: reg.Counter("truss_ingest_applied_total",
			"Coalesced mutations applied by ingestion flushes; submitted minus applied is the coalescer's win."),
		flushSize: reg.Histogram("truss_ingest_flush_batch_size",
			"Raw mutations per group-committed flush.", flushSizeBuckets),
		flushDur: reg.Histogram("truss_ingest_flush_seconds",
			"Group-commit flush duration: coalesce + WAL append/fsync + incremental maintenance + install.", nil),
		failures: reg.Counter("truss_ingest_flush_failures_total",
			"Flushes whose apply step failed; every producer in the flush saw the error."),
		byReason: make(map[string]*obs.Counter, len(FlushReasons)),
	}
	for _, r := range FlushReasons {
		m.byReason[r] = reg.Counter("truss_ingest_flushes_total",
			"Group-committed flushes by trigger: size (batch cap), window (flush interval), "+
				"drain (adaptive: queue went empty), sync (explicit barrier), shutdown (pipeline close).",
			"reason", r)
	}
	return m
}

func (m *Metrics) flushes(reason string) *obs.Counter { return m.byReason[reason] }

// queueDepth returns the per-graph queued-submissions gauge.
func (m *Metrics) queueDepth(name string) *obs.Gauge {
	return m.reg.Gauge("truss_ingest_queue_depth",
		"Submissions waiting in the ingestion queue.", "graph", name)
}
