package extsort

import (
	"math/rand"
	"testing"

	"repro/internal/gio"
)

func BenchmarkSortSpilled(b *testing.B) {
	dir := b.TempDir()
	r := rand.New(rand.NewSource(1))
	const n = 200000
	recs := make([]gio.EdgeAux, n)
	for i := range recs {
		recs[i] = gio.EdgeAux{U: r.Uint32(), V: r.Uint32(), Aux: int32(i)}
	}
	b.SetBytes(n * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSorter[gio.EdgeAux](gio.EdgeAuxCodec{}, keyLess, Config{Budget: 16384, Dir: dir})
		for _, rec := range recs {
			if err := s.Push(rec); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		if err := it.ForEach(func(gio.EdgeAux) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("count = %d", count)
		}
	}
}
