// Package extsort implements external merge sort over streams of fixed-size
// binary records. The LowerBounding stage of the bottom-up algorithm uses it
// to merge per-partition lower-bound updates for external edges: each
// iteration emits two update records per surviving cross-partition edge,
// which are sorted by edge key and max-merged into the next residual graph.
//
// The sort honours an in-memory budget (number of records held at once),
// producing sorted runs on disk and k-way merging them with a heap, exactly
// the textbook Aggarwal-Vitter external sort the paper's I/O model assumes.
package extsort

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"repro/internal/gio"
)

// Config controls an external sort.
type Config struct {
	// Budget is the maximum number of records held in memory while forming
	// runs. Values < 2 are raised to 2.
	Budget int
	// Dir is the temp directory for run files; os.TempDir() if empty.
	Dir string
	// Stats receives I/O accounting for run files (may be nil).
	Stats *gio.Stats
}

var runSeq atomic.Int64

// Sorter accumulates records, spilling sorted runs to disk when the budget
// is exceeded, then merges them on demand.
type Sorter[T any] struct {
	cfg   Config
	codec gio.Codec[T]
	less  func(a, b T) bool
	buf   []T
	runs  []string
	count int64
}

// NewSorter returns a Sorter using less as the strict weak ordering.
func NewSorter[T any](codec gio.Codec[T], less func(a, b T) bool, cfg Config) *Sorter[T] {
	if cfg.Budget < 2 {
		cfg.Budget = 2
	}
	if cfg.Dir == "" {
		cfg.Dir = os.TempDir()
	}
	return &Sorter[T]{cfg: cfg, codec: codec, less: less}
}

// Push adds a record to the sorter.
func (s *Sorter[T]) Push(rec T) error {
	s.buf = append(s.buf, rec)
	s.count++
	if len(s.buf) >= s.cfg.Budget {
		return s.spill()
	}
	return nil
}

// Count returns the number of records pushed.
func (s *Sorter[T]) Count() int64 { return s.count }

func (s *Sorter[T]) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	path := filepath.Join(s.cfg.Dir, fmt.Sprintf("run-%d.sort", runSeq.Add(1)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := gio.NewWriter(f, s.codec, s.cfg.Stats)
	for _, r := range s.buf {
		if err := w.Write(r); err != nil {
			w.Close()
			os.Remove(path)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(path)
		return err
	}
	s.runs = append(s.runs, path)
	s.buf = s.buf[:0]
	return nil
}

// Discard drops buffered records and deletes any spilled run files. It is
// the abort path for a sorter that will never reach Sort (an error or a
// cancelled context mid-Push); after a successful Sort the runs belong to
// the iterator and Discard is a no-op, so `defer sorter.Discard()` is
// always safe.
func (s *Sorter[T]) Discard() {
	s.buf = nil
	for _, p := range s.runs {
		os.Remove(p)
	}
	s.runs = nil
}

// mergeItem is a heap entry: the head record of one run.
type mergeItem[T any] struct {
	rec T
	src int
}

type mergeHeap[T any] struct {
	items []mergeItem[T]
	less  func(a, b T) bool
}

func (h *mergeHeap[T]) Len() int           { return len(h.items) }
func (h *mergeHeap[T]) Less(i, j int) bool { return h.less(h.items[i].rec, h.items[j].rec) }
func (h *mergeHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap[T]) Push(x any)         { h.items = append(h.items, x.(mergeItem[T])) }
func (h *mergeHeap[T]) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// Iterator yields records in sorted order. Close releases run files.
type Iterator[T any] struct {
	// in-memory part (possibly the only part)
	mem []T
	mi  int
	// disk runs
	readers []*gio.Reader[T]
	paths   []string
	h       *mergeHeap[T]
	memIdx  int // src index representing the in-memory run in the heap
	done    bool
}

// Sort finalizes the sorter and returns an iterator over all records in
// order. The sorter must not be reused afterwards.
func (s *Sorter[T]) Sort() (*Iterator[T], error) {
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
	it := &Iterator[T]{mem: s.buf, paths: s.runs}
	s.buf = nil
	s.runs = nil
	if len(it.paths) == 0 {
		return it, nil
	}
	it.h = &mergeHeap[T]{less: s.less}
	for i, p := range it.paths {
		f, err := os.Open(p)
		if err != nil {
			it.Close()
			return nil, err
		}
		r := gio.NewReader(f, s.codec, s.cfg.Stats)
		it.readers = append(it.readers, r)
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			continue
		}
		if err != nil {
			it.Close()
			return nil, err
		}
		heap.Push(it.h, mergeItem[T]{rec, i})
	}
	it.memIdx = len(it.paths)
	if it.mi < len(it.mem) {
		heap.Push(it.h, mergeItem[T]{it.mem[it.mi], it.memIdx})
		it.mi++
	}
	return it, nil
}

// Next returns the next record in sorted order; ok is false at the end.
func (it *Iterator[T]) Next() (rec T, ok bool, err error) {
	var zero T
	if it.done {
		return zero, false, nil
	}
	if it.h == nil {
		// Pure in-memory case.
		if it.mi >= len(it.mem) {
			it.done = true
			return zero, false, nil
		}
		rec = it.mem[it.mi]
		it.mi++
		return rec, true, nil
	}
	if it.h.Len() == 0 {
		it.done = true
		return zero, false, nil
	}
	top := heap.Pop(it.h).(mergeItem[T])
	// Refill from the source run.
	if top.src == it.memIdx {
		if it.mi < len(it.mem) {
			heap.Push(it.h, mergeItem[T]{it.mem[it.mi], it.memIdx})
			it.mi++
		}
	} else {
		nrec, rerr := it.readers[top.src].Read()
		if rerr == nil {
			heap.Push(it.h, mergeItem[T]{nrec, top.src})
		} else if !errors.Is(rerr, io.EOF) {
			return zero, false, rerr
		}
	}
	return top.rec, true, nil
}

// ForEach drains the iterator, invoking fn in order, then closes it.
func (it *Iterator[T]) ForEach(fn func(T) error) error {
	defer it.Close()
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Close releases readers and deletes run files. Safe to call repeatedly.
func (it *Iterator[T]) Close() error {
	var first error
	for _, r := range it.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	it.readers = nil
	for _, p := range it.paths {
		if err := os.Remove(p); err != nil && first == nil && !os.IsNotExist(err) {
			first = err
		}
	}
	it.paths = nil
	it.done = true
	return first
}
