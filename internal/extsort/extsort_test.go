package extsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/gio"
)

func keyLess(a, b gio.EdgeAux) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	return a.Aux < b.Aux
}

func drain(t *testing.T, it *Iterator[gio.EdgeAux]) []gio.EdgeAux {
	t.Helper()
	var out []gio.EdgeAux
	if err := it.ForEach(func(r gio.EdgeAux) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSortEmpty(t *testing.T) {
	s := NewSorter[gio.EdgeAux](gio.EdgeAuxCodec{}, keyLess, Config{Dir: t.TempDir()})
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, it); len(got) != 0 {
		t.Fatalf("expected empty, got %d", len(got))
	}
}

func TestSortInMemoryOnly(t *testing.T) {
	s := NewSorter[gio.EdgeAux](gio.EdgeAuxCodec{}, keyLess, Config{Budget: 1000, Dir: t.TempDir()})
	in := []gio.EdgeAux{{U: 5, V: 6, Aux: 1}, {U: 1, V: 2, Aux: 3}, {U: 3, V: 4, Aux: 0}, {U: 1, V: 2, Aux: 1}}
	for _, r := range in {
		if err := s.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	want := []gio.EdgeAux{{U: 1, V: 2, Aux: 1}, {U: 1, V: 2, Aux: 3}, {U: 3, V: 4, Aux: 0}, {U: 5, V: 6, Aux: 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSortSpillsRuns(t *testing.T) {
	dir := t.TempDir()
	var st gio.Stats
	s := NewSorter[gio.EdgeAux](gio.EdgeAuxCodec{}, keyLess, Config{Budget: 16, Dir: dir, Stats: &st})
	r := rand.New(rand.NewSource(99))
	const n = 1000
	in := make([]gio.EdgeAux, n)
	for i := range in {
		in[i] = gio.EdgeAux{U: r.Uint32() % 100, V: r.Uint32() % 100, Aux: int32(i)}
		if err := s.Push(in[i]); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	if len(got) != n {
		t.Fatalf("got %d records, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if keyLess(got[i], got[i-1]) {
			t.Fatalf("out of order at %d: %v then %v", i, got[i-1], got[i])
		}
	}
	// Multiset equality: sort input the same way and compare.
	sort.SliceStable(in, func(i, j int) bool { return keyLess(in[i], in[j]) })
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("permutation mismatch at %d: %v vs %v", i, got[i], in[i])
		}
	}
	if st.BytesWritten() == 0 || st.BytesRead() == 0 {
		t.Fatal("expected spilled runs to produce I/O traffic")
	}
}

func TestSortBudgetOne(t *testing.T) {
	// Degenerate budget raised internally to 2; still must sort.
	s := NewSorter[gio.EdgeAux](gio.EdgeAuxCodec{}, keyLess, Config{Budget: 1, Dir: t.TempDir()})
	for i := 9; i >= 0; i-- {
		if err := s.Push(gio.EdgeAux{U: uint32(i), V: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, it)
	for i := range got {
		if got[i].U != uint32(i) {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSortQuickPermutation(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64, budgetRaw uint8, nRaw uint16) bool {
		budget := int(budgetRaw)%50 + 2
		n := int(nRaw) % 500
		r := rand.New(rand.NewSource(seed))
		s := NewSorter[gio.EdgeAux](gio.EdgeAuxCodec{}, keyLess, Config{Budget: budget, Dir: dir})
		sum := uint64(0)
		for i := 0; i < n; i++ {
			rec := gio.EdgeAux{U: r.Uint32() % 1000, V: r.Uint32() % 1000, Aux: int32(r.Intn(100))}
			sum += uint64(rec.U) + uint64(rec.V) + uint64(rec.Aux)
			if err := s.Push(rec); err != nil {
				return false
			}
		}
		it, err := s.Sort()
		if err != nil {
			return false
		}
		var got []gio.EdgeAux
		if err := it.ForEach(func(rec gio.EdgeAux) error { got = append(got, rec); return nil }); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		osum := uint64(0)
		for i, rec := range got {
			osum += uint64(rec.U) + uint64(rec.V) + uint64(rec.Aux)
			if i > 0 && keyLess(rec, got[i-1]) {
				return false
			}
		}
		return osum == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorCloseIdempotent(t *testing.T) {
	s := NewSorter[gio.EdgeAux](gio.EdgeAuxCodec{}, keyLess, Config{Budget: 2, Dir: t.TempDir()})
	for i := 0; i < 10; i++ {
		if err := s.Push(gio.EdgeAux{U: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("Next after Close should report done")
	}
}
