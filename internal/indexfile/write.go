package indexfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"syscall"

	"repro/internal/graph"
	"repro/internal/index"
)

// Meta carries the file-level metadata stored alongside the index.
type Meta struct {
	// Source describes where the graph came from (a path, a URL, a
	// registry note); free-form, returned verbatim by Open.
	Source string
	// GraphVersion is the server's mutation epoch for the graph at write
	// time; 0 when unused.
	GraphVersion uint64
	// CreatedUnixNano timestamps the write; 0 leaves it unset.
	CreatedUnixNano int64
}

// payload is one section's write plan: its ID, exact byte length, and a
// routine that emits those bytes. Emitting twice (once into a CRC, once
// into the output) keeps Write a single forward pass over any io.Writer
// — no seeking back to patch checksums.
type payload struct {
	id     uint32
	length uint64
	emit   func(e *emitter)
}

// Write serializes ix into the indexfile format and returns the number
// of bytes written. The output is deterministic for a given index and
// meta. Write does not sync; use WriteFile for the durable
// temp+rename+fsync discipline.
func Write(w io.Writer, ix *index.TrussIndex, meta Meta) (int64, error) {
	secs, hdr, err := plan(ix, meta)
	if err != nil {
		return 0, err
	}

	// Pass 1: compute each section's CRC32-C by emitting into the hasher.
	entries := make([]secEntry, len(secs))
	fileOff := uint64(preambleLen)
	for i, s := range secs {
		crc := crc32.New(castagnoli)
		e := &emitter{w: crc}
		s.emit(e)
		if e.err != nil {
			return 0, e.err
		}
		if uint64(e.n) != s.length {
			return 0, fmt.Errorf("indexfile: section %s emitted %d bytes, planned %d",
				sectionNames[s.id], e.n, s.length)
		}
		entries[i] = secEntry{id: s.id, crc: crc.Sum32(), off: fileOff, len: s.length}
		fileOff += s.length + padLen(s.length)
	}
	hdr.fileSize = fileOff

	// Pass 2: stream preamble then payloads.
	bw := bufio.NewWriterSize(w, 1<<16)
	e := &emitter{w: bw}
	e.write(encodePreamble(hdr, entries))
	for _, s := range secs {
		s.emit(e)
		e.pad(padLen(s.length))
	}
	if e.err != nil {
		return e.n, e.err
	}
	if err := bw.Flush(); err != nil {
		return e.n, err
	}
	if uint64(e.n) != hdr.fileSize {
		return e.n, fmt.Errorf("indexfile: wrote %d bytes, planned %d", e.n, hdr.fileSize)
	}
	return e.n, nil
}

// WriteFile writes ix to path with full crash durability: temp file in
// the same directory, fsync, atomic rename, then fsync of the parent
// directory so the rename itself survives power loss.
func WriteFile(path string, ix *index.TrussIndex, meta Meta) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+"-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := Write(tmp, ix, meta); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so a just-completed rename or create in it
// is durable — without it, a power cut after rename can resurrect the
// old directory entry even though the new file's data was synced.
// Platforms or filesystems that cannot sync directories (EINVAL,
// windows) are treated as success: the rename is already as durable as
// that platform allows.
func SyncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && errorIsEINVAL(err) {
		err = nil
	}
	return err
}

// errorIsEINVAL reports whether err is the "fsync not supported here"
// errno some filesystems return for directory syncs.
func errorIsEINVAL(err error) bool {
	for {
		if errno, ok := err.(syscall.Errno); ok {
			return errno == syscall.EINVAL
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
		if err == nil {
			return false
		}
	}
}

// plan derives the section payloads and header from the index, after
// validating that its arrays have the shapes the format freezes.
func plan(ix *index.TrussIndex, meta Meta) ([]payload, header, error) {
	g := ix.Graph()
	parts := ix.RawParts()
	off, adjV, adjE := g.CSR()
	edges := g.Edges()
	n := g.NumVertices()
	m := len(edges)

	if err := checkParts(parts, off, adjV, adjE, n, m); err != nil {
		return nil, header{}, err
	}
	if uint64(len(meta.Source)) > 1<<20 {
		return nil, header{}, fmt.Errorf("indexfile: source string too long (%d bytes)", len(meta.Source))
	}

	// Level directory and concatenated community-array totals.
	kmax := parts.KMax
	dir := make([]levelDirEnt, kmax+1)
	var eoTotal, coTotal uint64
	for k := int32(3); k <= kmax; k++ {
		lv := &parts.Levels[k]
		dir[k] = levelDirEnt{
			eoStart:   eoTotal,
			coStart:   coTotal,
			commCount: uint32(len(lv.CommOff) - 1),
		}
		eoTotal += uint64(len(lv.EdgeOrder))
		coTotal += uint64(len(lv.CommOff))
	}

	hdr := header{
		formatVersion:   FormatVersion,
		sectionCount:    numSections,
		n:               uint64(n),
		m:               uint64(m),
		kmax:            uint32(kmax),
		graphVersion:    meta.GraphVersion,
		createdUnixNano: meta.CreatedUnixNano,
	}

	secs := []payload{
		{secMeta, uint64(4 + len(meta.Source)), func(e *emitter) {
			e.u32(uint32(len(meta.Source)))
			e.write([]byte(meta.Source))
		}},
		{secCSROff, uint64(8 * len(off)), func(e *emitter) { e.i64s(off) }},
		{secCSRAdjV, uint64(4 * len(adjV)), func(e *emitter) { e.u32s(adjV) }},
		{secCSRAdjE, uint64(4 * len(adjE)), func(e *emitter) { e.i32s(adjE) }},
		{secEdges, uint64(8 * len(edges)), func(e *emitter) { e.edges(edges) }},
		{secPhi, uint64(4 * len(parts.Phi)), func(e *emitter) { e.i32s(parts.Phi) }},
		{secByPhi, uint64(4 * len(parts.ByPhi)), func(e *emitter) { e.i32s(parts.ByPhi) }},
		{secPos, uint64(4 * len(parts.Pos)), func(e *emitter) { e.i32s(parts.Pos) }},
		{secCnt, uint64(4 * len(parts.Cnt)), func(e *emitter) { e.i32s(parts.Cnt) }},
		{secSizes, uint64(8 * len(parts.Sizes)), func(e *emitter) { e.i64s(parts.Sizes) }},
		{secLevelDir, uint64(secEntryLen * len(dir)), func(e *emitter) {
			for _, d := range dir {
				e.u64(d.eoStart)
				e.u64(d.coStart)
				e.u32(d.commCount)
				e.u32(0)
			}
		}},
		{secEdgeOrder, 4 * eoTotal, func(e *emitter) {
			for k := range parts.Levels {
				e.i32s(parts.Levels[k].EdgeOrder)
			}
		}},
		{secCommOff, 4 * coTotal, func(e *emitter) {
			for k := range parts.Levels {
				e.i32s(parts.Levels[k].CommOff)
			}
		}},
		{secCommIdx, 4 * eoTotal, func(e *emitter) {
			for k := range parts.Levels {
				e.i32s(parts.Levels[k].CommIdx)
			}
		}},
	}
	return secs, hdr, nil
}

// checkParts validates the writer's inputs against the format's shape
// invariants, so a malformed index is rejected before a single byte hits
// disk rather than discovered by a reader.
func checkParts(p index.RawParts, off []int64, adjV []uint32, adjE []int32, n, m int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("indexfile: index shape invalid: %s", fmt.Sprintf(format, args...))
	}
	if len(off) != n+1 {
		return bad("CSR offsets length %d, want n+1 = %d", len(off), n+1)
	}
	if len(adjV) != 2*m || len(adjE) != 2*m {
		return bad("CSR adjacency lengths %d/%d, want 2m = %d", len(adjV), len(adjE), 2*m)
	}
	if len(p.Phi) != m || len(p.ByPhi) != m || len(p.Pos) != m {
		return bad("per-edge arrays %d/%d/%d, want m = %d", len(p.Phi), len(p.ByPhi), len(p.Pos), m)
	}
	k := p.KMax
	if k < 0 {
		return bad("negative kmax %d", k)
	}
	if len(p.Cnt) != int(k)+2 || len(p.Sizes) != int(k)+1 || len(p.Levels) != int(k)+1 {
		return bad("cnt/sizes/levels lengths %d/%d/%d, want kmax+2/kmax+1/kmax+1 with kmax = %d",
			len(p.Cnt), len(p.Sizes), len(p.Levels), k)
	}
	for i := int32(0); i <= k; i++ {
		lv := &p.Levels[i]
		if i < 3 {
			if len(lv.EdgeOrder) != 0 || len(lv.CommOff) != 0 || len(lv.CommIdx) != 0 {
				return bad("level %d below 3 is non-empty", i)
			}
			continue
		}
		nk := int(p.Cnt[i])
		if len(lv.EdgeOrder) != nk || len(lv.CommIdx) != nk {
			return bad("level %d tables %d/%d edges, want cnt[%d] = %d",
				i, len(lv.EdgeOrder), len(lv.CommIdx), i, nk)
		}
		if len(lv.CommOff) < 1 || lv.CommOff[0] != 0 || int(lv.CommOff[len(lv.CommOff)-1]) != nk {
			return bad("level %d community offsets do not span [0,%d]", i, nk)
		}
	}
	return nil
}

// encodePreamble serializes the header, section table, and table CRC
// into the fixed-size preamble block.
func encodePreamble(hdr header, entries []secEntry) []byte {
	buf := make([]byte, preambleLen)
	copy(buf, Magic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], hdr.formatVersion)
	le.PutUint32(buf[12:], headerLen)
	le.PutUint32(buf[16:], hdr.sectionCount)
	le.PutUint64(buf[24:], hdr.n)
	le.PutUint64(buf[32:], hdr.m)
	le.PutUint32(buf[40:], hdr.kmax)
	le.PutUint64(buf[48:], hdr.graphVersion)
	le.PutUint64(buf[56:], uint64(hdr.createdUnixNano))
	le.PutUint64(buf[64:], hdr.fileSize)
	for i, s := range entries {
		p := buf[headerLen+i*secEntryLen:]
		le.PutUint32(p, s.id)
		le.PutUint32(p[4:], s.crc)
		le.PutUint64(p[8:], s.off)
		le.PutUint64(p[16:], s.len)
	}
	tableEnd := headerLen + len(entries)*secEntryLen
	le.PutUint32(buf[tableEnd:], crc32.Checksum(buf[:tableEnd], castagnoli))
	return buf
}

// emitter writes typed values little-endian to w, tracking the running
// byte count and the first error. On little-endian hosts bulk slices go
// out as single writes over their raw bytes; big-endian hosts fall back
// to element-wise encoding.
type emitter struct {
	w       io.Writer
	err     error
	n       int64
	scratch [8]byte
}

func (e *emitter) write(b []byte) {
	if e.err != nil || len(b) == 0 {
		return
	}
	k, err := e.w.Write(b)
	e.n += int64(k)
	e.err = err
}

func (e *emitter) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.scratch[:4], v)
	e.write(e.scratch[:4])
}

func (e *emitter) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.scratch[:8], v)
	e.write(e.scratch[:8])
}

func (e *emitter) u32s(v []uint32) {
	if hostLE {
		e.write(bytesOfU32(v))
		return
	}
	for _, x := range v {
		e.u32(x)
	}
}

func (e *emitter) i32s(v []int32) {
	if hostLE {
		e.write(bytesOfI32(v))
		return
	}
	for _, x := range v {
		e.u32(uint32(x))
	}
}

func (e *emitter) i64s(v []int64) {
	if hostLE {
		e.write(bytesOfI64(v))
		return
	}
	for _, x := range v {
		e.u64(uint64(x))
	}
}

func (e *emitter) edges(v []graph.Edge) {
	if hostLE {
		e.write(bytesOfEdges(v))
		return
	}
	for _, x := range v {
		e.u32(x.U)
		e.u32(x.V)
	}
}

// pad emits k zero bytes (inter-section alignment padding).
func (e *emitter) pad(k uint64) {
	var zeros [align]byte
	e.write(zeros[:k])
}
