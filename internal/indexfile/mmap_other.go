//go:build !linux && !darwin

package indexfile

import (
	"io"
	"os"
	"unsafe"
)

// mapped is the portable fallback: the file is read into one heap
// buffer. No page-cache sharing, but the same aliasing rules hold — the
// buffer is allocated 8-byte aligned (backed by []uint64) so section
// slices cast identically to the mmap path.
type mapped struct {
	data []byte
}

// mapFile reads path fully into an aligned heap buffer.
func mapFile(path string) (*mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < preambleLen {
		return nil, corruptf("file is %d bytes, smaller than the %d-byte preamble", size, preambleLen)
	}
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, err
	}
	return &mapped{data: buf}, nil
}

// close drops the buffer reference; the GC reclaims it once no section
// slice aliases it.
func (m *mapped) close() error {
	m.data = nil
	return nil
}
