// Package indexfile defines the on-disk format for a TrussIndex: a
// versioned, little-endian, section-table binary layout designed to be
// memory-mapped and served straight off the page cache.
//
// Motivation. Wang & Cheng's premise is graphs too large to treat
// casually in memory, yet a serving process classically re-peels or
// replays its way back to a heap TrussIndex at every restart. The index
// is already flat-array-shaped — CSR adjacency, a phi-sorted edge
// permutation, prefix counts, per-level community tables — so this
// package freezes exactly those arrays into one immutable file, 8-byte
// aligned, little-endian, each section checksummed. A reader then
// aliases every section as a typed Go slice directly over mmap: open
// time is O(sections + kmax) header validation, resident cost is
// whatever the kernel pages in, and N processes serving the same graph
// share one copy of the bytes.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "TRUSSIX1"
//	8       4     format version (currently 1)
//	12      4     header length (72)
//	16      4     section count (14)
//	20      4     reserved (0)
//	24      8     n  — number of vertices
//	32      8     m  — number of edges
//	40      4     kmax
//	44      4     reserved (0)
//	48      8     graph version (server mutation epoch; 0 if unused)
//	56      8     created, unix nanoseconds
//	64      8     total file size in bytes
//	72      14*24 section table: {id u32, crc32c u32, off u64, len u64}
//	408     4     crc32c over bytes [0, 408) — header + section table
//	412     4     zero padding to 8
//	416     ...   section payloads, each starting 8-byte aligned,
//	              zero-padded between sections, in section-ID order
//
// The 14 sections (IDs 1..14) are: meta (source string), the graph's
// CSR offsets / neighbor IDs / edge IDs and canonical edge list, then
// the index arrays phi, byPhi, pos, cnt, sizes, and the per-level
// community tables flattened as a level directory plus three
// concatenated arrays (edgeOrder, commOff, commIdx). See section
// constants below for each payload's element type and expected length.
//
// Integrity is split in two deliberately. Open verifies the header and
// section-table checksum plus O(kmax) structural invariants — enough to
// reject any torn or truncated file without touching the bulk sections,
// keeping open time independent of edge count. Verify additionally
// recomputes every section's CRC32-C (sequential reads at memory/disk
// bandwidth); run it after copying files around, or let the server do
// it at recovery.
package indexfile

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Format identity.
const (
	Magic         = "TRUSSIX1"
	FormatVersion = 1
)

// Fixed layout dimensions.
const (
	headerLen   = 72
	secEntryLen = 24
	numSections = 14
	align       = 8
	// preambleLen is where the first section payload starts: header,
	// section table, table CRC, padded to alignment.
	preambleLen = (headerLen + numSections*secEntryLen + 4 + align - 1) / align * align
)

// Section IDs, also the order payloads appear in the file. Element types
// and counts (n = vertices, m = edges, K = kmax):
//
//	meta      bytes  4 + len(source): u32 length-prefixed source string
//	csr-off   i64    n+1              CSR row offsets
//	csr-adjv  u32    2m               CSR neighbor vertex IDs
//	csr-adje  i32    2m               CSR neighbor edge IDs
//	edges     2*u32  m                canonical edge list (U, V pairs)
//	phi       i32    m                truss number per edge ID
//	byphi     i32    m                edge IDs sorted by phi desc, ID asc
//	pos       i32    m                inverse of byphi
//	cnt       i32    K+2              cnt[k] = |T_k|, cnt[K+1] = 0
//	sizes     i64    K+1              class histogram |Phi_k|
//	leveldir  24B    K+1              per-level directory (levelDirEnt)
//	edgeorder i32    sum_k cnt[k]     per-level community edge groups
//	commoff   i32    sum_k (C_k + 1)  per-level community offsets
//	commidx   i32    sum_k cnt[k]     per-level byPhi-position -> community
//
// where the sums run over k = 3..kmax and C_k is level k's community
// count.
const (
	secMeta = iota + 1
	secCSROff
	secCSRAdjV
	secCSRAdjE
	secEdges
	secPhi
	secByPhi
	secPos
	secCnt
	secSizes
	secLevelDir
	secEdgeOrder
	secCommOff
	secCommIdx
)

// sectionNames maps section IDs to their display names (trussd index
// inspect, error messages).
var sectionNames = [numSections + 1]string{
	"", "meta", "csr-off", "csr-adjv", "csr-adje", "edges",
	"phi", "byphi", "pos", "cnt", "sizes",
	"leveldir", "edgeorder", "commoff", "commidx",
}

// levelDirEnt is one 24-byte entry of the level directory: where level
// k's slices start inside the three concatenated community arrays.
// edgeOrder and commIdx share the same start (both have cnt[k]
// elements); commOff has commCount+1. Levels 0..2 are all-zero.
type levelDirEnt struct {
	eoStart   uint64 // element offset into edgeorder and commidx
	coStart   uint64 // element offset into commoff
	commCount uint32
	_         uint32 // reserved
}

// header is the decoded fixed-size file header.
type header struct {
	formatVersion   uint32
	sectionCount    uint32
	n               uint64
	m               uint64
	kmax            uint32
	graphVersion    uint64
	createdUnixNano int64
	fileSize        uint64
}

// secEntry is one decoded section-table entry.
type secEntry struct {
	id  uint32
	crc uint32
	off uint64
	len uint64
}

// ErrCorrupt tags every integrity failure: bad magic, checksum
// mismatches, truncation, impossible structural invariants. Test with
// errors.Is; the message carries the specific diagnosis.
var ErrCorrupt = errors.New("corrupt indexfile")

// corruptf wraps ErrCorrupt with a diagnosis.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// castagnoli is the CRC32-C table shared by writer and reader. CRC32-C
// is hardware-accelerated on amd64 and arm64, so full-file Verify runs
// at memory bandwidth.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SectionInfo describes one section for tooling (trussd index inspect).
type SectionInfo struct {
	ID   uint32
	Name string
	Off  uint64
	Len  uint64
	CRC  uint32
}

// padLen returns the zero padding needed to align off up to 8 bytes.
func padLen(off uint64) uint64 {
	return (align - off%align) % align
}
