package indexfile_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/indexfile"
)

// mustReject opens a damaged file and requires the Open/Verify pair to
// flag it: either Open fails with a wrapped ErrCorrupt, or Open
// succeeds (damage in a bulk section Open deliberately doesn't read)
// and Verify reports ErrCorrupt. Serving the bytes silently is the only
// failure.
func mustReject(t *testing.T, path, what string) {
	t.Helper()
	f, err := indexfile.Open(path)
	if err != nil {
		if !errors.Is(err, indexfile.ErrCorrupt) {
			t.Fatalf("%s: Open error does not wrap ErrCorrupt: %v", what, err)
		}
		return
	}
	defer f.Close()
	if err := f.Verify(); !errors.Is(err, indexfile.ErrCorrupt) {
		t.Fatalf("%s: damage not detected (Open ok, Verify = %v)", what, err)
	}
}

// corpus writes one valid indexfile and returns its bytes plus section
// layout.
func corpus(t *testing.T) ([]byte, []indexfile.SectionInfo, string) {
	t.Helper()
	ix := fixtureIndex(t)
	path := writeTemp(t, ix, indexfile.Meta{Source: "corrupt-fixture"})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := indexfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	secs := f.Sections()
	f.Close()
	return raw, secs, t.TempDir()
}

func rewrite(t *testing.T, dir string, b []byte) string {
	t.Helper()
	path := filepath.Join(dir, "damaged.tix")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTruncationAtEverySectionBoundary chops the file at the start and
// end of every section (plus a byte into each) — every torn tail a
// crashed writer could leave. Open must reject all of them: a truncated
// file can never pass the header's size check.
func TestTruncationAtEverySectionBoundary(t *testing.T) {
	raw, secs, dir := corpus(t)
	cuts := []uint64{0, 1, 7, 8, 71, 72, 411, 415, uint64(len(raw)) - 1}
	for _, s := range secs {
		cuts = append(cuts, s.Off, s.Off+1, s.Off+s.Len)
	}
	for _, cut := range cuts {
		if cut >= uint64(len(raw)) {
			continue
		}
		path := rewrite(t, dir, raw[:cut])
		if _, err := indexfile.Open(path); !errors.Is(err, indexfile.ErrCorrupt) {
			t.Fatalf("truncation at %d: Open = %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestBitFlipAtEverySectionBoundary flips a bit in the first and last
// byte of every section, and across the whole preamble, and requires
// Open∥Verify to catch each one.
func TestBitFlipAtEverySectionBoundary(t *testing.T) {
	raw, secs, dir := corpus(t)
	flip := func(off uint64, bit uint, what string) {
		b := append([]byte(nil), raw...)
		b[off] ^= 1 << bit
		mustReject(t, rewrite(t, dir, b), what)
	}
	for _, s := range secs {
		if s.Len == 0 {
			continue
		}
		flip(s.Off, 0, "first byte of "+s.Name)
		flip(s.Off+s.Len-1, 7, "last byte of "+s.Name)
		flip(s.Off+s.Len/2, 3, "middle of "+s.Name)
	}
	// Every byte of the preamble (header + section table + its CRC) is
	// covered by the table checksum, so a flip anywhere must fail Open
	// itself — except inside the magic, which fails even earlier.
	for off := uint64(0); off < 416; off += 7 {
		b := append([]byte(nil), raw...)
		b[off] ^= 0x10
		path := rewrite(t, dir, b)
		if _, err := indexfile.Open(path); !errors.Is(err, indexfile.ErrCorrupt) {
			t.Fatalf("preamble flip at %d: Open = %v, want ErrCorrupt", off, err)
		}
	}
}

// TestGrownFile appends trailing garbage — the header's recorded size
// must reject it.
func TestGrownFile(t *testing.T) {
	raw, _, dir := corpus(t)
	b := append(append([]byte(nil), raw...), 0xde, 0xad, 0xbe, 0xef)
	if _, err := indexfile.Open(rewrite(t, dir, b)); !errors.Is(err, indexfile.ErrCorrupt) {
		t.Fatalf("grown file: Open = %v, want ErrCorrupt", err)
	}
}
