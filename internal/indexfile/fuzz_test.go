package indexfile

import (
	"bytes"
	"testing"
	"unsafe"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/index"
)

// FuzzOpen throws arbitrary bytes at the parse-and-validate layer under
// Open: it must either reject them or produce a view whose Verify and
// query surface don't panic. The harness feeds bytes straight to
// newFile through an aligned buffer — the same path Open takes after
// mmap, minus the syscalls, so the fuzzer spends its budget on header
// and section-table states instead of disk I/O. The seed corpus
// includes a valid file and its prefixes so mutation starts on the
// interesting side of the magic check. The seed graph is deliberately
// tiny (the paper's running example, ~1 KB on disk): the fuzz engine
// minimizes every coverage-increasing input by re-running the target
// across its bytes, so seed size directly sets the cost of each find.
func FuzzOpen(f *testing.F) {
	ix := index.Build(core.Decompose(gen.PaperExample()))
	var valid bytes.Buffer
	if _, err := Write(&valid, ix, Meta{Source: "fuzz-seed"}); err != nil {
		f.Fatal(err)
	}
	raw := valid.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:preambleLen])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	mangled := append([]byte(nil), raw...)
	mangled[500] ^= 0xff
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < preambleLen {
			// mapFile rejects these before parsing; mirror it.
			return
		}
		// 8-aligned copy, as mmap and the heap fallback both guarantee.
		words := make([]uint64, (len(data)+7)/8)
		buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(data))
		copy(buf, data)
		file, err := newFile("fuzz", &mapped{data: buf})
		if err != nil {
			return // rejected: fine, as long as we didn't panic
		}
		// Open's structural checks admit the shape; only a file whose
		// section checksums also hold is promised safe to query.
		if file.Verify() != nil {
			return
		}
		view := file.Index()
		_ = view.Histogram()
		_ = view.TopClasses(3)
		for k := int32(0); k <= view.KMax(); k++ {
			_ = view.TrussSize(k)
			if n := view.CommunityCount(k); n > 0 {
				_, _ = view.Community(k, 0)
				_, _ = view.Community(k, n-1)
			}
		}
		for _, e := range view.Graph().Edges() {
			_, _ = view.TrussNumber(e.U, e.V)
			break
		}
	})
}
