//go:build linux || darwin

package indexfile

import (
	"os"
	"syscall"
)

// mapped holds one read-only file mapping. On linux and darwin the file
// is mmap'd shared, so the bytes live in the page cache: opening costs
// no reads, and every process mapping the same file shares one physical
// copy.
type mapped struct {
	data []byte
}

// mapFile maps path read-only and returns its bytes. size is validated
// by the caller against the format, not here.
func mapFile(path string) (*mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < preambleLen {
		// Too small to be an indexfile; also keeps us from mmap'ing zero
		// bytes, which the kernel rejects.
		return nil, corruptf("file is %d bytes, smaller than the %d-byte preamble", size, preambleLen)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	return &mapped{data: data}, nil
}

// close releases the mapping. Any slices aliasing it are invalid
// afterwards — reading them would fault.
func (m *mapped) close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
