package indexfile

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/graph"
	"repro/internal/index"
)

// File is an opened indexfile: the mapping plus a TrussIndex whose
// arrays alias it. The index is immutable and safe for concurrent
// readers; Close unmaps the file, after which the index must not be
// touched (on mmap platforms its slices point at unmapped pages).
//
// A patched descendant (TrussIndex.Patch) is safe to keep after Close:
// Patch copies everything it returns onto the heap, so mutations
// materialize new arrays over the shared mmap base and never alias it.
type File struct {
	path string
	mm   *mapped
	hdr  header
	secs []secEntry
	ix   *index.TrussIndex
	meta Meta
}

// Open maps path and returns a queryable view of the index inside.
//
// Open validates the header and section-table checksum plus O(kmax)
// structural invariants — truncation, torn writes in the preamble, and
// impossible shapes are rejected with an error wrapping ErrCorrupt —
// but it deliberately does not read the bulk sections, so open time is
// independent of edge count. Call Verify to additionally check every
// section's CRC32-C.
func Open(path string) (*File, error) {
	mm, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	f, err := newFile(path, mm)
	if err != nil {
		mm.close()
		return nil, err
	}
	return f, nil
}

// newFile parses and validates the mapped bytes and assembles the view.
func newFile(path string, mm *mapped) (*File, error) {
	hdr, secs, err := parsePreamble(mm.data)
	if err != nil {
		return nil, err
	}
	if err := checkSections(hdr, secs, uint64(len(mm.data))); err != nil {
		return nil, err
	}
	f := &File{path: path, mm: mm, hdr: hdr, secs: secs}

	sec := func(id uint32) []byte {
		s := secs[id-1]
		return mm.data[s.off : s.off+s.len]
	}

	// Meta: u32 length-prefixed source string.
	metaRaw := sec(secMeta)
	if srcLen := binary.LittleEndian.Uint32(metaRaw); uint64(srcLen)+4 != uint64(len(metaRaw)) {
		return nil, corruptf("meta section declares %d source bytes, holds %d", srcLen, len(metaRaw)-4)
	}
	f.meta = Meta{
		Source:          string(metaRaw[4:]),
		GraphVersion:    hdr.graphVersion,
		CreatedUnixNano: hdr.createdUnixNano,
	}

	g, err := graph.FromCSR(
		sectionI64(sec(secCSROff)),
		sectionU32(sec(secCSRAdjV)),
		sectionI32(sec(secCSRAdjE)),
		sectionEdges(sec(secEdges)),
	)
	if err != nil {
		return nil, corruptf("%v", err)
	}

	kmax := int32(hdr.kmax)
	cnt := sectionI32(sec(secCnt))
	dir := decodeLevelDir(sec(secLevelDir))
	eoAll := sectionI32(sec(secEdgeOrder))
	coAll := sectionI32(sec(secCommOff))
	ciAll := sectionI32(sec(secCommIdx))
	if err := checkStructure(hdr, cnt, sectionI64(sec(secSizes)), dir, uint64(len(eoAll)), uint64(len(coAll))); err != nil {
		return nil, err
	}

	levels := make([]index.RawLevel, kmax+1)
	for k := int32(3); k <= kmax; k++ {
		d := dir[k]
		nk := uint64(cnt[k])
		levels[k] = index.RawLevel{
			EdgeOrder: eoAll[d.eoStart : d.eoStart+nk],
			CommOff:   coAll[d.coStart : d.coStart+uint64(d.commCount)+1],
			CommIdx:   ciAll[d.eoStart : d.eoStart+nk],
		}
	}

	f.ix = index.FromRawParts(g, index.RawParts{
		Phi:    sectionI32(sec(secPhi)),
		KMax:   kmax,
		ByPhi:  sectionI32(sec(secByPhi)),
		Pos:    sectionI32(sec(secPos)),
		Cnt:    cnt,
		Sizes:  sectionI64(sec(secSizes)),
		Levels: levels,
	})
	return f, nil
}

// parsePreamble decodes and checksums the header and section table.
func parsePreamble(data []byte) (header, []secEntry, error) {
	if len(data) < preambleLen {
		return header{}, nil, corruptf("file is %d bytes, smaller than the %d-byte preamble", len(data), preambleLen)
	}
	if string(data[:8]) != Magic {
		return header{}, nil, corruptf("bad magic %q", data[:8])
	}
	le := binary.LittleEndian
	hdr := header{
		formatVersion:   le.Uint32(data[8:]),
		sectionCount:    le.Uint32(data[16:]),
		n:               le.Uint64(data[24:]),
		m:               le.Uint64(data[32:]),
		kmax:            le.Uint32(data[40:]),
		graphVersion:    le.Uint64(data[48:]),
		createdUnixNano: int64(le.Uint64(data[56:])),
		fileSize:        le.Uint64(data[64:]),
	}
	if hdr.formatVersion != FormatVersion {
		return header{}, nil, corruptf("format version %d, this build reads %d", hdr.formatVersion, FormatVersion)
	}
	if hl := le.Uint32(data[12:]); hl != headerLen {
		return header{}, nil, corruptf("header length %d, want %d", hl, headerLen)
	}
	if hdr.sectionCount != numSections {
		return header{}, nil, corruptf("section count %d, want %d", hdr.sectionCount, numSections)
	}
	tableEnd := headerLen + numSections*secEntryLen
	if got, want := crc32.Checksum(data[:tableEnd], castagnoli), le.Uint32(data[tableEnd:]); got != want {
		return header{}, nil, corruptf("header/table checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	if hdr.fileSize != uint64(len(data)) {
		return header{}, nil, corruptf("header says %d bytes, file has %d", hdr.fileSize, len(data))
	}
	// The alignment padding after the table CRC is outside the checksum;
	// requiring it zero keeps every preamble byte accounted for.
	for _, b := range data[tableEnd+4 : preambleLen] {
		if b != 0 {
			return header{}, nil, corruptf("non-zero preamble padding")
		}
	}
	secs := make([]secEntry, numSections)
	for i := range secs {
		p := data[headerLen+i*secEntryLen:]
		secs[i] = secEntry{
			id:  le.Uint32(p),
			crc: le.Uint32(p[4:]),
			off: le.Uint64(p[8:]),
			len: le.Uint64(p[16:]),
		}
	}
	return hdr, secs, nil
}

// checkSections validates the section table: IDs 1..14 in order, every
// payload 8-aligned, in bounds, non-overlapping, and exactly the length
// the header's (n, m, kmax) dictate for its element type. The dimension
// bounds up front keep every later size product inside uint64.
func checkSections(hdr header, secs []secEntry, size uint64) error {
	const (
		maxN    = 1 << 33 // vertices are uint32 IDs; headroom for n+1
		maxM    = 1 << 31 // edge IDs are int32
		maxKMax = 1 << 31
	)
	if hdr.n > maxN || hdr.m > maxM || uint64(hdr.kmax) > maxKMax {
		return corruptf("implausible dimensions n=%d m=%d kmax=%d", hdr.n, hdr.m, hdr.kmax)
	}
	if int32(hdr.kmax) < 0 {
		return corruptf("negative kmax %d", int32(hdr.kmax))
	}
	// Expected byte length per section, 0 meaning "any" (resolved below).
	k := uint64(hdr.kmax)
	want := map[uint32]uint64{
		secCSROff:   8 * (hdr.n + 1),
		secCSRAdjV:  4 * 2 * hdr.m,
		secCSRAdjE:  4 * 2 * hdr.m,
		secEdges:    8 * hdr.m,
		secPhi:      4 * hdr.m,
		secByPhi:    4 * hdr.m,
		secPos:      4 * hdr.m,
		secCnt:      4 * (k + 2),
		secSizes:    8 * (k + 1),
		secLevelDir: secEntryLen * (k + 1),
	}
	end := uint64(preambleLen)
	for i, s := range secs {
		if s.id != uint32(i+1) {
			return corruptf("section %d has id %d, want %d", i, s.id, i+1)
		}
		if s.off%align != 0 {
			return corruptf("section %s offset %d not %d-aligned", sectionNames[s.id], s.off, align)
		}
		if s.off < end || s.off > size || s.len > size-s.off {
			return corruptf("section %s spans [%d,%d+%d), outside [%d,%d)", sectionNames[s.id], s.off, s.off, s.len, end, size)
		}
		end = s.off + s.len
		if w, pinned := want[s.id]; pinned && s.len != w {
			return corruptf("section %s is %d bytes, want %d for n=%d m=%d kmax=%d",
				sectionNames[s.id], s.len, w, hdr.n, hdr.m, hdr.kmax)
		}
		switch s.id {
		case secMeta:
			if s.len < 4 {
				return corruptf("meta section is %d bytes, want at least 4", s.len)
			}
		case secEdgeOrder, secCommOff, secCommIdx:
			if s.len%4 != 0 {
				return corruptf("section %s length %d not a multiple of 4", sectionNames[s.id], s.len)
			}
		}
	}
	return nil
}

// checkStructure validates the O(kmax) cross-section invariants: cnt is
// a monotone prefix-count table, sizes is its derivative summing to m,
// and the level directory tiles the concatenated community arrays
// exactly with consistent per-level community offsets.
func checkStructure(hdr header, cnt []int32, sizes []int64, dir []levelDirEnt, eoLen, coLen uint64) error {
	m := int64(hdr.m)
	kmax := int32(hdr.kmax)
	if int64(cnt[0]) != m || cnt[kmax+1] != 0 {
		return corruptf("cnt spans [%d,%d], want [m=%d,0]", cnt[0], cnt[kmax+1], m)
	}
	var sum int64
	for k := int32(0); k <= kmax; k++ {
		if cnt[k] < cnt[k+1] {
			return corruptf("cnt not monotone at k=%d (%d < %d)", k, cnt[k], cnt[k+1])
		}
		if sizes[k] < 0 || sizes[k] != int64(cnt[k]-cnt[k+1]) {
			return corruptf("sizes[%d]=%d disagrees with cnt (%d-%d)", k, sizes[k], cnt[k], cnt[k+1])
		}
		sum += sizes[k]
	}
	if sum != m {
		return corruptf("class sizes sum to %d, want m=%d", sum, m)
	}
	var eoCur, coCur uint64
	for k := int32(0); k <= kmax; k++ {
		d := dir[k]
		if k < 3 {
			if d != (levelDirEnt{}) {
				return corruptf("level %d below 3 has a non-zero directory entry", k)
			}
			continue
		}
		nk := uint64(cnt[k])
		if d.eoStart != eoCur || d.coStart != coCur {
			return corruptf("level %d directory starts (%d,%d), want (%d,%d)", k, d.eoStart, d.coStart, eoCur, coCur)
		}
		if uint64(d.commCount) > nk {
			return corruptf("level %d has %d communities over %d edges", k, d.commCount, nk)
		}
		eoCur += nk
		coCur += uint64(d.commCount) + 1
	}
	if eoCur != eoLen || coCur != coLen {
		return corruptf("level directory tiles %d/%d community elements, sections hold %d/%d", eoCur, coCur, eoLen, coLen)
	}
	return nil
}

// decodeLevelDir parses the level-directory section.
func decodeLevelDir(b []byte) []levelDirEnt {
	out := make([]levelDirEnt, len(b)/secEntryLen)
	le := binary.LittleEndian
	for i := range out {
		p := b[i*secEntryLen:]
		out[i] = levelDirEnt{
			eoStart:   le.Uint64(p),
			coStart:   le.Uint64(p[8:]),
			commCount: le.Uint32(p[16:]),
		}
	}
	return out
}

// Index returns the queryable TrussIndex view. It aliases the mapping:
// do not use it after Close.
func (f *File) Index() *index.TrussIndex { return f.ix }

// Meta returns the file's metadata (source string, graph version,
// creation time).
func (f *File) Meta() Meta { return f.meta }

// FormatVersion returns the file's format version.
func (f *File) FormatVersion() uint32 { return f.hdr.formatVersion }

// MappedBytes returns the size of the mapping in bytes.
func (f *File) MappedBytes() int64 { return int64(f.hdr.fileSize) }

// Path returns the path the file was opened from.
func (f *File) Path() string { return f.path }

// Sections lists the file's sections for tooling.
func (f *File) Sections() []SectionInfo {
	out := make([]SectionInfo, len(f.secs))
	for i, s := range f.secs {
		out[i] = SectionInfo{ID: s.id, Name: sectionNames[s.id], Off: s.off, Len: s.len, CRC: s.crc}
	}
	return out
}

// Close releases the mapping. The Index view (and every slice obtained
// from it) must not be used afterwards.
func (f *File) Close() error {
	return f.mm.close()
}
