package indexfile

import (
	"encoding/binary"
	"unsafe"

	"repro/internal/graph"
)

// hostLE reports whether this machine is little-endian. On such hosts
// (amd64, arm64, riscv64 — everything we serve on) section payloads are
// aliased in place with zero copies; on big-endian hosts the reader
// falls back to an element-wise decode into heap slices, trading the
// zero-copy property for correctness.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// The alias helpers reinterpret a byte slice as a typed slice without
// copying. Callers guarantee little-endian host, element-size-divisible
// length, and 8-byte base alignment (mmap bases are page-aligned, the
// heap fallback allocates via []uint64, and every section offset is
// 8-aligned by construction).

func asU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func asI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func asI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func asEdges(b []byte) []graph.Edge {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*graph.Edge)(unsafe.Pointer(&b[0])), len(b)/8)
}

// The byte-view helpers are the write-side inverse: view a typed slice
// as raw bytes for bulk output and CRC. Little-endian hosts only.

func bytesOfU32(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func bytesOfI32(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func bytesOfI64(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

func bytesOfEdges(v []graph.Edge) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

// Element-wise decoders for big-endian hosts: allocate and convert.

func decodeU32(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func decodeI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func decodeI64(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func decodeEdges(b []byte) []graph.Edge {
	out := make([]graph.Edge, len(b)/8)
	for i := range out {
		out[i] = graph.Edge{
			U: binary.LittleEndian.Uint32(b[8*i:]),
			V: binary.LittleEndian.Uint32(b[8*i+4:]),
		}
	}
	return out
}

// sectionI32 / sectionI64 / sectionU32 / sectionEdges view one section's
// payload as a typed slice: zero-copy alias on little-endian hosts, heap
// decode otherwise.

func sectionU32(b []byte) []uint32 {
	if hostLE {
		return asU32(b)
	}
	return decodeU32(b)
}

func sectionI32(b []byte) []int32 {
	if hostLE {
		return asI32(b)
	}
	return decodeI32(b)
}

func sectionI64(b []byte) []int64 {
	if hostLE {
		return asI64(b)
	}
	return decodeI64(b)
}

func sectionEdges(b []byte) []graph.Edge {
	if hostLE {
		return asEdges(b)
	}
	return decodeEdges(b)
}
