package indexfile_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/indexfile"
)

// fixtureIndex builds a heap index over a graph with real community
// structure (planted cliques on top of communities, kmax well above 3).
func fixtureIndex(t *testing.T) *index.TrussIndex {
	t.Helper()
	g := gen.WithPlantedCliques(gen.Community(4, 10, 0.7, 1.5, 7), []int{7}, 3)
	res := core.Decompose(g)
	ix := index.Build(res)
	if ix.KMax() < 4 {
		t.Fatalf("fixture too weak: kmax = %d", ix.KMax())
	}
	return ix
}

func writeTemp(t *testing.T, ix *index.TrussIndex, meta indexfile.Meta) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.tix")
	if err := indexfile.WriteFile(path, ix, meta); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

// sameParts asserts two indexes are structurally identical through
// their raw arrays — the mmap view must be indistinguishable from the
// heap index it was written from.
func sameParts(t *testing.T, got, want *index.TrussIndex) {
	t.Helper()
	gp, wp := got.RawParts(), want.RawParts()
	if gp.KMax != wp.KMax {
		t.Fatalf("kmax = %d, want %d", gp.KMax, wp.KMax)
	}
	if !slices.Equal(gp.Phi, wp.Phi) || !slices.Equal(gp.ByPhi, wp.ByPhi) ||
		!slices.Equal(gp.Pos, wp.Pos) || !slices.Equal(gp.Cnt, wp.Cnt) ||
		!slices.Equal(gp.Sizes, wp.Sizes) {
		t.Fatal("per-edge arrays differ")
	}
	if len(gp.Levels) != len(wp.Levels) {
		t.Fatalf("levels %d, want %d", len(gp.Levels), len(wp.Levels))
	}
	for k := range wp.Levels {
		if !slices.Equal(gp.Levels[k].EdgeOrder, wp.Levels[k].EdgeOrder) ||
			!slices.Equal(gp.Levels[k].CommOff, wp.Levels[k].CommOff) ||
			!slices.Equal(gp.Levels[k].CommIdx, wp.Levels[k].CommIdx) {
			t.Fatalf("level %d community tables differ", k)
		}
	}
	if !slices.Equal(got.Graph().Edges(), want.Graph().Edges()) {
		t.Fatal("edge lists differ")
	}
	gOff, gAdjV, gAdjE := got.Graph().CSR()
	wOff, wAdjV, wAdjE := want.Graph().CSR()
	if !slices.Equal(gOff, wOff) || !slices.Equal(gAdjV, wAdjV) || !slices.Equal(gAdjE, wAdjE) {
		t.Fatal("CSR arrays differ")
	}
}

func TestRoundtrip(t *testing.T) {
	ix := fixtureIndex(t)
	meta := indexfile.Meta{Source: "fixture://community", GraphVersion: 42, CreatedUnixNano: 1700000000000000000}
	path := writeTemp(t, ix, meta)

	f, err := indexfile.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()

	sameParts(t, f.Index(), ix)
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify on a fresh file: %v", err)
	}
	if got := f.Meta(); got != meta {
		t.Fatalf("meta roundtrip: got %+v, want %+v", got, meta)
	}
	if f.FormatVersion() != indexfile.FormatVersion {
		t.Fatalf("format version %d", f.FormatVersion())
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.MappedBytes() != st.Size() {
		t.Fatalf("MappedBytes %d, file is %d", f.MappedBytes(), st.Size())
	}
	secs := f.Sections()
	if len(secs) != 14 {
		t.Fatalf("%d sections", len(secs))
	}
	for _, s := range secs {
		if s.Name == "" || s.Off%8 != 0 {
			t.Fatalf("bad section %+v", s)
		}
	}
}

// TestRoundtripQueries drives the public query surface of the mapped
// view against the heap index.
func TestRoundtripQueries(t *testing.T) {
	ix := fixtureIndex(t)
	f, err := indexfile.Open(writeTemp(t, ix, indexfile.Meta{}))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mv := f.Index()

	if !slices.Equal(mv.Histogram(), ix.Histogram()) {
		t.Fatal("histograms differ")
	}
	for k := int32(0); k <= ix.KMax()+1; k++ {
		if mv.TrussSize(k) != ix.TrussSize(k) {
			t.Fatalf("TrussSize(%d) differs", k)
		}
		if !slices.Equal(mv.Class(k), ix.Class(k)) {
			t.Fatalf("Class(%d) differs", k)
		}
		if mv.CommunityCount(k) != ix.CommunityCount(k) {
			t.Fatalf("CommunityCount(%d) differs", k)
		}
		for c := 0; c < ix.CommunityCount(k); c++ {
			want, _ := ix.Community(k, c)
			got, ok := mv.Community(k, c)
			if !ok || !slices.Equal(got, want) {
				t.Fatalf("Community(%d,%d) differs", k, c)
			}
		}
	}
	for _, e := range ix.Graph().Edges() {
		want, _ := ix.TrussNumber(e.U, e.V)
		got, ok := mv.TrussNumber(e.U, e.V)
		if !ok || got != want {
			t.Fatalf("TrussNumber(%d,%d) = %d, want %d", e.U, e.V, got, want)
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	ix := fixtureIndex(t)
	meta := indexfile.Meta{Source: "det", GraphVersion: 7, CreatedUnixNano: 123}
	var a, b bytes.Buffer
	if _, err := indexfile.Write(&a, ix, meta); err != nil {
		t.Fatal(err)
	}
	if _, err := indexfile.Write(&b, ix, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same index differ")
	}
}

// TestEmptyIndex covers the degenerate shapes: no edges, kmax 0.
func TestEmptyIndex(t *testing.T) {
	g := gen.ErdosRenyi(6, 0, 1)
	ix := index.Build(core.Decompose(g))
	f, err := indexfile.Open(writeTemp(t, ix, indexfile.Meta{Source: "empty"}))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sameParts(t, f.Index(), ix)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissing(t *testing.T) {
	_, err := indexfile.Open(filepath.Join(t.TempDir(), "nope.tix"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

// TestPatchOverMapped is the copy-on-write story: Patch over a mapped
// base must equal a fresh heap build, and the patched descendant must
// survive the base file being closed (nothing in it aliases the map).
func TestPatchOverMapped(t *testing.T) {
	ix := fixtureIndex(t)
	f, err := indexfile.Open(writeTemp(t, ix, indexfile.Meta{}))
	if err != nil {
		t.Fatal(err)
	}
	mv := f.Index()

	g := mv.Graph()
	edges := g.Edges()
	batch := dynamic.Batch{
		Adds: []graph.Edge{{U: 0, V: 39}, {U: 1, V: 38}},
		Dels: []graph.Edge{edges[len(edges)/2]},
	}
	res, err := dynamic.Update(context.Background(), g, mv.PhiView(), batch, dynamic.Config{})
	if err != nil {
		t.Fatal(err)
	}
	patched := mv.Patch(res.G, res.Phi, res.KMax, res.Remap, res.Changed)
	fresh := index.Build(&core.Result{G: res.G, Phi: res.Phi, KMax: res.KMax})
	sameParts(t, patched, fresh)

	// Close the base mapping, then hammer the patched index: on mmap
	// platforms any surviving alias would fault here.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(patched.Histogram(), fresh.Histogram()) {
		t.Fatal("patched histogram differs after base close")
	}
	for k := int32(3); k <= patched.KMax(); k++ {
		for c := 0; c < patched.CommunityCount(k); c++ {
			pc, _ := patched.Community(k, c)
			fc, _ := fresh.Community(k, c)
			if !slices.Equal(pc, fc) {
				t.Fatalf("community %d/%d differs after base close", k, c)
			}
		}
	}
}
