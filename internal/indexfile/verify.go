package indexfile

import "hash/crc32"

// Verify recomputes every section's CRC32-C against the section table
// and checks the padding between sections is zero. This is the deep
// integrity pass Open deliberately skips: it reads the whole file
// (sequential, at page-cache or disk bandwidth — CRC32-C is
// hardware-accelerated on amd64/arm64), so it costs O(file size) where
// Open costs O(kmax). Run it after copying a file between machines, or
// let the server run it once at recovery; a mismatch returns an error
// wrapping ErrCorrupt naming the damaged section.
func (f *File) Verify() error {
	data := f.mm.data
	end := uint64(preambleLen)
	for _, s := range f.secs {
		for _, b := range data[end:s.off] {
			if b != 0 {
				return corruptf("non-zero padding before section %s", sectionNames[s.id])
			}
		}
		if got := crc32.Checksum(data[s.off:s.off+s.len], castagnoli); got != s.crc {
			return corruptf("section %s checksum mismatch (stored %08x, computed %08x)",
				sectionNames[s.id], s.crc, got)
		}
		end = s.off + s.len
	}
	for _, b := range data[end:] {
		if b != 0 {
			return corruptf("non-zero padding after last section")
		}
	}
	return nil
}
