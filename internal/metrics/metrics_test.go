package metrics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kcore"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestClusteringCoefficientKnown(t *testing.T) {
	// Triangle: CC = 1.
	tri := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if cc := ClusteringCoefficient(tri); !almostEqual(cc, 1) {
		t.Fatalf("triangle CC = %f", cc)
	}
	// Star: CC = 0.
	star := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	if cc := ClusteringCoefficient(star); !almostEqual(cc, 0) {
		t.Fatalf("star CC = %f", cc)
	}
	// Empty graph: defined as 0.
	if cc := ClusteringCoefficient(graph.NewBuilder(0).Build()); !almostEqual(cc, 0) {
		t.Fatalf("empty CC = %f", cc)
	}
	// K4 minus one edge: vertices on the missing edge have CC 1 (deg 2,
	// one triangle); the other two have deg 3 and 2 of 3 neighbor pairs
	// connected -> 2/3. Mean = (1+1+2/3+2/3)/4 = 5/6.
	km := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 1, V: 2}, {U: 1, V: 3}})
	if cc := ClusteringCoefficient(km); !almostEqual(cc, 5.0/6.0) {
		t.Fatalf("K4-e CC = %f, want %f", cc, 5.0/6.0)
	}
}

func TestDegreeStats(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 3, V: 4}})
	dmax, dmed := DegreeStats(g)
	if dmax != 3 {
		t.Fatalf("dmax = %d", dmax)
	}
	// Degrees: 3,1,1,2,1 sorted 1,1,1,2,3 -> median 1.
	if dmed != 1 {
		t.Fatalf("dmed = %d", dmed)
	}
	if dmax, dmed = DegreeStats(graph.NewBuilder(0).Build()); dmax != 0 || dmed != 0 {
		t.Fatal("empty graph degree stats")
	}
}

func TestTextSizeBytes(t *testing.T) {
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 10, V: 100}})
	// "0\t1\n" = 4 bytes; "10\t100\n" = 7 bytes.
	if sz := TextSizeBytes(g); sz != 11 {
		t.Fatalf("size = %d, want 11", sz)
	}
}

func TestStatsOnPaperExample(t *testing.T) {
	g := gen.PaperExample()
	st := Stats(g)
	if st.V != 12 || st.E != 26 {
		t.Fatalf("V=%d E=%d", st.V, st.E)
	}
	if st.KMax != 5 {
		t.Fatalf("kmax = %d", st.KMax)
	}
	if st.DMax == 0 || st.DMed == 0 || st.SizeBytes == 0 {
		t.Fatal("degenerate stats")
	}
}

// TestFigure1Property verifies the Example 1 claim on the Managers fixture:
// the clustering coefficient increases strictly from G to the 3-core to the
// 4-truss, the 4-core is empty, and the 5-truss is empty.
func TestFigure1Property(t *testing.T) {
	g := gen.Managers()

	co := kcore.Decompose(g)
	core3 := co.KCore(3)
	if core3.NumEdges() == 0 {
		t.Fatal("3-core empty")
	}
	if co.KCore(4).NumEdges() != 0 {
		t.Fatal("4-core should be empty")
	}

	tr := core.Decompose(g)
	truss4 := tr.Truss(4)
	if truss4.NumEdges() == 0 {
		t.Fatal("4-truss empty")
	}
	if tr.Truss(5).NumEdges() != 0 {
		t.Fatal("5-truss should be empty")
	}

	ccG := ClusteringCoefficient(g)
	cc3 := ClusteringCoefficient(core3)
	cc4 := ClusteringCoefficient(truss4)
	if !(ccG < cc3 && cc3 < cc4) {
		t.Fatalf("CC ordering violated: G=%.3f 3-core=%.3f 4-truss=%.3f", ccG, cc3, cc4)
	}
	t.Logf("Figure 1 analog: CC(G)=%.2f CC(3-core)=%.2f CC(4-truss)=%.2f (paper: 0.51/0.65/0.80)",
		ccG, cc3, cc4)
}

// TestTable6Property verifies the Section 7.4 claims on a community graph:
// the kmax-truss is no larger than the cmax-core and at least as clustered.
func TestTable6Property(t *testing.T) {
	g := gen.Community(12, 14, 0.65, 1.5, 42)
	ts, cs := TrussVsCore(g)
	if ts.E == 0 || cs.E == 0 {
		t.Fatal("degenerate extremal subgraphs")
	}
	if ts.E > cs.E || ts.V > cs.V {
		t.Fatalf("kmax-truss (%d/%d) larger than cmax-core (%d/%d)",
			ts.V, ts.E, cs.V, cs.E)
	}
	if ts.CC < cs.CC {
		t.Fatalf("truss CC %.3f below core CC %.3f", ts.CC, cs.CC)
	}
	// The truss-core relationship: kmax <= cmax + 1.
	if ts.K > cs.K+1 {
		t.Fatalf("kmax %d > cmax+1 %d", ts.K, cs.K+1)
	}
}

func TestTrussProfile(t *testing.T) {
	g := gen.PaperExample()
	r := core.Decompose(g)
	p := TrussProfile(r)
	// 26 edges: 1/26 at k=2, 9/26 at k=3, 6/26 at k=4, 10/26 at k=5.
	want := []float64{0, 0, 1.0 / 26, 9.0 / 26, 6.0 / 26, 10.0 / 26}
	if len(p) != len(want) {
		t.Fatalf("profile = %v", p)
	}
	sum := 0.0
	for k := range want {
		if !almostEqual(p[k], want[k]) {
			t.Fatalf("profile[%d] = %f, want %f", k, p[k], want[k])
		}
		sum += p[k]
	}
	if !almostEqual(sum, 1) {
		t.Fatalf("profile mass = %f", sum)
	}
	if TrussProfile(core.Decompose(graph.NewBuilder(0).Build())) != nil {
		t.Fatal("empty graph should have nil profile")
	}
}

func TestProfileSimilarity(t *testing.T) {
	a := []float64{0, 0, 0.5, 0.5}
	if s := ProfileSimilarity(a, a); !almostEqual(s, 1) {
		t.Fatalf("self similarity = %f", s)
	}
	b := []float64{0, 0, 0, 0, 1} // disjoint support
	if s := ProfileSimilarity(a, b); !almostEqual(s, 0) {
		t.Fatalf("disjoint similarity = %f", s)
	}
	if s := ProfileSimilarity(nil, a); s != 0 {
		t.Fatalf("nil similarity = %f", s)
	}
	// Same-structure graphs from different seeds should fingerprint as
	// more similar to each other than to a different family.
	er1 := TrussProfile(core.Decompose(gen.ErdosRenyi(400, 2000, 1)))
	er2 := TrussProfile(core.Decompose(gen.ErdosRenyi(400, 2000, 2)))
	col := TrussProfile(core.Decompose(gen.Collaboration(400, 120, 12, 3)))
	if ProfileSimilarity(er1, er2) <= ProfileSimilarity(er1, col) {
		t.Fatalf("ER/ER %.3f should exceed ER/collab %.3f",
			ProfileSimilarity(er1, er2), ProfileSimilarity(er1, col))
	}
}

func TestSubStatsCountsActiveVertices(t *testing.T) {
	// A graph with a declared isolated vertex: V counts only covered ones.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	b.DeclareVertex(5)
	g := b.Build()
	st := Stats(g)
	if st.V != 2 {
		t.Fatalf("V = %d, want 2", st.V)
	}
}
