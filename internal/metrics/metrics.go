// Package metrics computes the graph statistics the paper's evaluation
// reports: clustering coefficients (Watts-Strogatz [33], used in Example 1
// and Table 6), degree statistics and on-disk sizes (Table 2), and the
// kmax-truss versus cmax-core comparison (Table 6).
package metrics

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/triangle"
)

// ClusteringCoefficient returns the average local clustering coefficient
// (Watts & Strogatz): mean over non-isolated vertices of
// triangles(v) / C(deg(v), 2); vertices of degree < 2 contribute 0, and
// isolated vertices are excluded from the mean.
func ClusteringCoefficient(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	tri := triangle.LocalCounts(g)
	var sum float64
	counted := 0
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		if d == 0 {
			continue
		}
		counted++
		if d >= 2 {
			sum += float64(tri[v]) / (float64(d) * float64(d-1) / 2)
		}
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// DegreeStats returns the maximum and median degree over vertices that
// appear in at least one edge (matching the convention of Table 2, whose
// medians reflect power-law tails).
func DegreeStats(g *graph.Graph) (dmax, dmed int) {
	var degs []int
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(uint32(v)); d > 0 {
			degs = append(degs, d)
		}
	}
	if len(degs) == 0 {
		return 0, 0
	}
	sort.Ints(degs)
	return degs[len(degs)-1], degs[len(degs)/2]
}

// TextSizeBytes returns the byte size of the graph in the SNAP text format
// ("u\tv\n" per edge), the "size" column of Table 2.
func TextSizeBytes(g *graph.Graph) int64 {
	var total int64
	for _, e := range g.Edges() {
		total += int64(digits(e.U) + digits(e.V) + 2)
	}
	return total
}

func digits(x uint32) int {
	d := 1
	for x >= 10 {
		x /= 10
		d++
	}
	return d
}

// TableStats is one row of Table 2.
type TableStats struct {
	V, E      int64
	SizeBytes int64
	DMax      int
	DMed      int
	KMax      int32
}

// Stats computes the Table 2 row for g. The truss decomposition needed for
// kmax is computed with the improved in-memory algorithm.
func Stats(g *graph.Graph) TableStats {
	dmax, dmed := DegreeStats(g)
	res := core.Decompose(g)
	// Count only vertices that carry edges: dataset files list edges, so
	// isolated trailing IDs are a generator artifact.
	var v int64
	for i := 0; i < g.NumVertices(); i++ {
		if g.Degree(uint32(i)) > 0 {
			v++
		}
	}
	return TableStats{
		V:         v,
		E:         int64(g.NumEdges()),
		SizeBytes: TextSizeBytes(g),
		DMax:      dmax,
		DMed:      dmed,
		KMax:      res.KMax,
	}
}

// TrussProfile returns the normalized k-class mass function of a
// decomposition: entry k is the fraction of edges with truss number k.
// The profile is a compact structural fingerprint of a network — the
// visualization/fingerprinting application the paper's introduction cites:
// random graphs concentrate mass at low k, collaboration and community
// graphs carry long tails.
func TrussProfile(r *core.Result) []float64 {
	sizes := r.ClassSizes()
	total := float64(r.G.NumEdges())
	if total == 0 {
		return nil
	}
	out := make([]float64, len(sizes))
	for k, n := range sizes {
		out[k] = float64(n) / total
	}
	return out
}

// ProfileSimilarity compares two truss profiles with cosine similarity in
// [0, 1] (profiles are non-negative). Lengths may differ; the shorter is
// zero-padded.
func ProfileSimilarity(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		var x, y float64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

func sqrt(x float64) float64 { return math.Sqrt(x) }

// SubgraphStats is one side of a Table 6 row: the extremal truss or core.
type SubgraphStats struct {
	V, E int
	K    int32   // kmax (truss) or cmax (core)
	CC   float64 // clustering coefficient of the subgraph
}

// TrussVsCore computes the Table 6 comparison for g: statistics of the
// kmax-truss T and the cmax-core C. Returns the two sides.
func TrussVsCore(g *graph.Graph) (t, c SubgraphStats) {
	tr := core.Decompose(g)
	maxTruss := tr.MaxTruss()
	t = subStats(maxTruss, tr.KMax)

	co := kcore.Decompose(g)
	maxCore := co.MaxCore()
	c = subStats(maxCore, co.CMax)
	return t, c
}

func subStats(g *graph.Graph, k int32) SubgraphStats {
	v := 0
	for i := 0; i < g.NumVertices(); i++ {
		if g.Degree(uint32(i)) > 0 {
			v++
		}
	}
	return SubgraphStats{V: v, E: g.NumEdges(), K: k, CC: ClusteringCoefficient(g)}
}
