package mapreduce

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestEngineWordCount(t *testing.T) {
	var c Counters
	type wc struct {
		word string
		n    int
	}
	lines := []string{"a b a", "b c", "a"}
	out := Run(&c, lines,
		func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		func(word string, ones []int, emit func(wc)) {
			emit(wc{word, len(ones)})
		})
	sort.Slice(out, func(i, j int) bool { return out[i].word < out[j].word })
	want := []wc{{"a", 3}, {"b", 2}, {"c", 1}}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if c.Rounds != 1 || c.MapInput != 3 || c.Shuffled != 6 || c.Groups != 3 || c.Output != 3 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestEngineEmptyInput(t *testing.T) {
	var c Counters
	out := Run(&c, nil,
		func(x int, emit func(int, int)) { emit(x, x) },
		func(k int, vs []int, emit func(int)) { emit(k) })
	if len(out) != 0 || c.Rounds != 1 {
		t.Fatalf("out=%v counters=%+v", out, c)
	}
}

func TestEngineValueOrderWithinKey(t *testing.T) {
	// Stable shuffle: values arrive in emission order within each key.
	var c Counters
	in := []int{5, 3, 8, 1}
	out := Run(&c, in,
		func(x int, emit func(string, int)) { emit("all", x) },
		func(k string, vs []int, emit func([]int)) { emit(vs) })
	if len(out) != 1 {
		t.Fatal("expected one group")
	}
	for i, v := range in {
		if out[0][i] != v {
			t.Fatalf("value order not stable: %v", out[0])
		}
	}
}

func TestCountersAddString(t *testing.T) {
	a := Counters{Rounds: 1, MapInput: 2, Shuffled: 3, Groups: 4, Output: 5}
	b := Counters{Rounds: 10}
	a.Add(b)
	if a.Rounds != 11 {
		t.Fatalf("Add: %+v", a)
	}
	if !strings.Contains(a.String(), "rounds=11") {
		t.Fatalf("String: %s", a.String())
	}
}

func TestTrussDecomposePaperExample(t *testing.T) {
	g := gen.PaperExample()
	res := TrussDecompose(g)
	want := gen.PaperExamplePhi()
	if res.KMax != 5 {
		t.Fatalf("kmax = %d", res.KMax)
	}
	for key, p := range want {
		if res.Phi[key] != p {
			e := graph.EdgeFromKey(key)
			t.Fatalf("edge %v: TD-MR phi=%d want %d", e, res.Phi[key], p)
		}
	}
	if res.Counters.Rounds == 0 || res.Counters.Shuffled == 0 {
		t.Fatal("no cluster work recorded")
	}
}

func TestTrussDecomposeMatchesInMemory(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 10 + r.Intn(30)
		m := 2*n + r.Intn(3*n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		g := graph.FromEdges(edges)
		want := core.Decompose(g)
		res := TrussDecompose(g)
		if res.KMax != want.KMax {
			t.Fatalf("trial %d: kmax %d vs %d", trial, res.KMax, want.KMax)
		}
		for id, p := range want.Phi {
			e := g.Edge(int32(id))
			if res.Phi[e.Key()] != p {
				t.Fatalf("trial %d edge %v: TD-MR %d vs %d", trial, e, res.Phi[e.Key()], p)
			}
		}
	}
}

func TestKTruss(t *testing.T) {
	g := gen.PaperExample()
	want := core.Decompose(g)
	for k := int32(3); k <= 6; k++ {
		edges, c := KTruss(g, k)
		wantEdges := want.TrussEdges(k)
		if len(edges) != len(wantEdges) {
			t.Fatalf("k=%d: %d edges, want %d", k, len(edges), len(wantEdges))
		}
		if k > 3 && c.Rounds == 0 {
			t.Fatal("no rounds recorded")
		}
	}
}

func TestTrussDecomposeEmptyAndTiny(t *testing.T) {
	res := TrussDecompose(graph.NewBuilder(0).Build())
	if res.KMax != 0 || len(res.Phi) != 0 {
		t.Fatalf("empty: %+v", res)
	}
	one := graph.FromEdges([]graph.Edge{{U: 0, V: 1}})
	res = TrussDecompose(one)
	if res.KMax != 2 || res.Phi[(graph.Edge{U: 0, V: 1}).Key()] != 2 {
		t.Fatalf("single edge: %+v", res)
	}
}

func TestRoundCountGrowsWithK(t *testing.T) {
	// The motivating claim of the paper: TD-MR pays an iterative sequence
	// of triangle-enumeration jobs. A graph with kmax=5 must take many
	// more rounds than a triangle-free one.
	tri := TrussDecompose(gen.PaperExample())
	var star []graph.Edge
	for i := 1; i <= 10; i++ {
		star = append(star, graph.Edge{U: 0, V: uint32(i)})
	}
	flat := TrussDecompose(graph.FromEdges(star))
	if tri.Counters.Rounds <= flat.Counters.Rounds {
		t.Fatalf("rounds: kmax=5 graph %d, star %d", tri.Counters.Rounds, flat.Counters.Rounds)
	}
}
