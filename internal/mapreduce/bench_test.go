package mapreduce

import (
	"testing"

	"repro/internal/gen"
)

func BenchmarkTrussDecomposeP2PQuick(b *testing.B) {
	g := gen.BarabasiAlbert(1600, 6, 101)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := TrussDecompose(g)
		if res.KMax == 0 {
			b.Fatal("kmax 0")
		}
	}
}

func BenchmarkTriangleCountsP2PQuick(b *testing.B) {
	g := gen.BarabasiAlbert(1600, 6, 101)
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c Counters
		counts := triangleCounts(&c, edges)
		if len(counts) == 0 {
			b.Fatal("no counts")
		}
	}
}
