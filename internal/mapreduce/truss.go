package mapreduce

import (
	"context"

	"repro/internal/graph"
)

// This file implements Cohen's truss algorithm on the MapReduce engine,
// following "Graph Twiddling in a MapReduce World" [16]: to find the
// k-truss, repeatedly (1) augment edges with their endpoint degrees,
// (2) enumerate triangles by binning each edge at its lower-degree
// endpoint, emitting open triads, and closing them against the edge list,
// (3) count triangles per edge, and (4) drop edges with fewer than k-2
// triangles — iterating until no edge drops. Truss decomposition invokes
// this fixpoint for k = 3, 4, ... on the surviving graph; edges dropped
// while enforcing level k have truss number k-1.

// annEdge is an edge annotated with endpoint degrees.
type annEdge struct {
	e      graph.Edge
	du, dv int32
}

// joinVal is the tagged value used by join rounds.
type joinVal struct {
	isEdge bool
	count  int32
}

// Result is a TD-MR truss decomposition.
type Result struct {
	// Phi maps canonical edge keys to truss numbers.
	Phi map[uint64]int32
	// KMax is the maximum truss number.
	KMax int32
	// Counters reports the simulated cluster work.
	Counters Counters
}

// TrussDecompose runs the full TD-MR decomposition of g.
func TrussDecompose(g *graph.Graph) *Result {
	r, _ := TrussDecomposeCtx(context.Background(), g, nil)
	return r
}

// TrussDecomposeCtx is TrussDecompose with cancellation and observation:
// the context is checked between fixpoint passes (each pass is one batch of
// simulated MapReduce rounds), and onLevel (if non-nil) sees each truss
// level k whose fixpoint starts. The only possible error is ctx.Err().
func TrussDecomposeCtx(ctx context.Context, g *graph.Graph, onLevel func(k int32)) (*Result, error) {
	res := &Result{Phi: make(map[uint64]int32, g.NumEdges())}
	edges := append([]graph.Edge(nil), g.Edges()...)
	for _, e := range edges {
		res.Phi[e.Key()] = 2 // until proven better
	}
	k := int32(3)
	for len(edges) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if onLevel != nil {
			onLevel(k)
		}
		var dropped []graph.Edge
		var err error
		edges, dropped, err = trussFixpoint(ctx, &res.Counters, edges, k)
		if err != nil {
			return nil, err
		}
		for _, e := range dropped {
			res.Phi[e.Key()] = k - 1
			if k-1 > res.KMax {
				res.KMax = k - 1
			}
		}
		if len(edges) > 0 {
			// Some edges survive level k; they have truss >= k.
			res.KMax = k
			k++
		}
	}
	return res, nil
}

// KTruss computes the k-truss edge set of g with the MR pipeline alone.
func KTruss(g *graph.Graph, k int32) ([]graph.Edge, Counters) {
	var c Counters
	edges := append([]graph.Edge(nil), g.Edges()...)
	for kk := int32(3); kk <= k; kk++ {
		edges, _, _ = trussFixpoint(context.Background(), &c, edges, kk)
	}
	return edges, c
}

// trussFixpoint repeatedly drops edges with fewer than k-2 triangles until
// stable, returning the surviving and dropped edges. The context is checked
// before each pass; on cancellation the error is ctx.Err().
func trussFixpoint(ctx context.Context, c *Counters, edges []graph.Edge, k int32) (kept, dropped []graph.Edge, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		counts := triangleCounts(c, edges)
		var drop []graph.Edge
		var keep []graph.Edge
		// Join round: edges against their triangle counts.
		type edgeCount struct {
			e   graph.Edge
			cnt int32
		}
		joined := Run(c, append(toJoinEdges(edges), toJoinCounts(counts)...),
			func(rec joinRec, emit func(uint64, joinVal)) {
				emit(rec.key, rec.val)
			},
			func(key uint64, vals []joinVal, emit func(edgeCount)) {
				var cnt int32
				seen := false
				for _, v := range vals {
					if v.isEdge {
						seen = true
					} else {
						cnt += v.count
					}
				}
				if seen {
					emit(edgeCount{graph.EdgeFromKey(key), cnt})
				}
			})
		for _, ec := range joined {
			if ec.cnt < k-2 {
				drop = append(drop, ec.e)
			} else {
				keep = append(keep, ec.e)
			}
		}
		dropped = append(dropped, drop...)
		edges = keep
		if len(drop) == 0 {
			return edges, dropped, nil
		}
	}
}

type joinRec struct {
	key uint64
	val joinVal
}

func toJoinEdges(edges []graph.Edge) []joinRec {
	out := make([]joinRec, len(edges))
	for i, e := range edges {
		out[i] = joinRec{e.Key(), joinVal{isEdge: true}}
	}
	return out
}

type keyCount struct {
	key uint64
	cnt int32
}

func toJoinCounts(counts []keyCount) []joinRec {
	out := make([]joinRec, len(counts))
	for i, kc := range counts {
		out[i] = joinRec{kc.key, joinVal{count: kc.cnt}}
	}
	return out
}

// triangleCounts runs the triangle-enumeration pipeline and returns, for
// each edge with at least one triangle, the triangle count.
func triangleCounts(c *Counters, edges []graph.Edge) []keyCount {
	// Round A: vertex degrees.
	type vd struct {
		v uint32
		d int32
	}
	degs := Run(c, edges,
		func(e graph.Edge, emit func(uint32, int32)) {
			emit(e.U, 1)
			emit(e.V, 1)
		},
		func(v uint32, ones []int32, emit func(vd)) {
			emit(vd{v, int32(len(ones))})
		})

	// Rounds B & C: annotate each edge with deg(U) then deg(V).
	type annHalf struct {
		e  graph.Edge
		du int32
	}
	type unionB struct {
		isDeg bool
		d     int32
		e     graph.Edge
	}
	inB := make([]unionB, 0, len(edges)+len(degs))
	for _, d := range degs {
		inB = append(inB, unionB{isDeg: true, d: d.d, e: graph.Edge{U: d.v}})
	}
	for _, e := range edges {
		inB = append(inB, unionB{e: e})
	}
	halves := Run(c, inB,
		func(r unionB, emit func(uint32, unionB)) {
			emit(r.e.U, r)
		},
		func(u uint32, vals []unionB, emit func(annHalf)) {
			var du int32
			for _, v := range vals {
				if v.isDeg {
					du = v.d
				}
			}
			for _, v := range vals {
				if !v.isDeg {
					emit(annHalf{v.e, du})
				}
			}
		})
	type unionC struct {
		isDeg bool
		d     int32
		h     annHalf
		v     uint32
	}
	inC := make([]unionC, 0, len(halves)+len(degs))
	for _, d := range degs {
		inC = append(inC, unionC{isDeg: true, d: d.d, v: d.v})
	}
	for _, h := range halves {
		inC = append(inC, unionC{h: h, v: h.e.V})
	}
	anns := Run(c, inC,
		func(r unionC, emit func(uint32, unionC)) {
			emit(r.v, r)
		},
		func(v uint32, vals []unionC, emit func(annEdge)) {
			var dv int32
			for _, r := range vals {
				if r.isDeg {
					dv = r.d
				}
			}
			for _, r := range vals {
				if !r.isDeg {
					emit(annEdge{r.h.e, r.h.du, dv})
				}
			}
		})

	// Round D: bin each edge at its lower-degree endpoint and emit open
	// triads keyed by the closing pair.
	triads := Run(c, anns,
		func(a annEdge, emit func(uint32, graph.Edge)) {
			// Bin at the lower-degree endpoint (ties: lower ID), so each
			// vertex's bin is O(sqrt(m)) on skewed graphs — Cohen's trick.
			pivot := a.e.U
			if a.dv < a.du || (a.dv == a.du && a.e.V < a.e.U) {
				pivot = a.e.V
			}
			emit(pivot, a.e)
		},
		func(pivot uint32, es []graph.Edge, emit func(joinRec2)) {
			for i := 0; i < len(es); i++ {
				for j := i + 1; j < len(es); j++ {
					w1 := es[i].Other(pivot)
					w2 := es[j].Other(pivot)
					closing := (graph.Edge{U: w1, V: w2}).Key()
					emit(joinRec2{closing, triadOrEdge2{pivot: pivot}})
				}
			}
		})

	// Round E: close triads against the edge list -> triangles.
	inE := triads
	for _, e := range edges {
		inE = append(inE, joinRec2{e.Key(), triadOrEdge2{isEdge: true}})
	}
	type triangleRec struct {
		closing uint64
		pivot   uint32
	}
	tris := Run(c, inE,
		func(r joinRec2, emit func(uint64, triadOrEdge2)) {
			emit(r.key, r.val)
		},
		func(key uint64, vals []triadOrEdge2, emit func(triangleRec)) {
			closed := false
			for _, v := range vals {
				if v.isEdge {
					closed = true
				}
			}
			if !closed {
				return
			}
			for _, v := range vals {
				if !v.isEdge {
					emit(triangleRec{key, v.pivot})
				}
			}
		})

	// Round F: count triangles per edge.
	return Run(c, tris,
		func(t triangleRec, emit func(uint64, int32)) {
			ce := graph.EdgeFromKey(t.closing)
			emit(t.closing, 1)
			emit((graph.Edge{U: t.pivot, V: ce.U}).Key(), 1)
			emit((graph.Edge{U: t.pivot, V: ce.V}).Key(), 1)
		},
		func(key uint64, ones []int32, emit func(keyCount)) {
			emit(keyCount{key, int32(len(ones))})
		})
}

type triadOrEdge2 struct {
	isEdge bool
	pivot  uint32
}

type joinRec2 struct {
	key uint64
	val triadOrEdge2
}
