// Package mapreduce provides a deterministic in-process MapReduce engine
// and Cohen's graph-twiddling truss-decomposition algorithm [16] built on
// it (TD-MR, the distributed baseline of the paper's Table 4).
//
// The engine simulates the essential cost structure of a MapReduce job:
// every round materializes all map output, sorts it by key (the shuffle),
// groups, and reduces. Counters record rounds, records mapped and
// shuffled, and bytes moved, so the experiment harness can report *why*
// TD-MR loses by orders of magnitude: truss decomposition forces an
// iterative sequence of triangle-enumeration jobs, each reshuffling the
// graph.
package mapreduce

import (
	"cmp"
	"fmt"
	"sort"
)

// Counters accumulate simulated-cluster work across rounds.
type Counters struct {
	// Rounds is the number of map-shuffle-reduce rounds executed.
	Rounds int
	// MapInput counts records entering mappers.
	MapInput int64
	// Shuffled counts key-value pairs sorted and grouped (the shuffle).
	Shuffled int64
	// Groups counts distinct reduce keys.
	Groups int64
	// Output counts records emitted by reducers.
	Output int64
}

func (c *Counters) String() string {
	return fmt.Sprintf("mr{rounds=%d mapIn=%d shuffled=%d groups=%d out=%d}",
		c.Rounds, c.MapInput, c.Shuffled, c.Groups, c.Output)
}

// Add merges other into c.
func (c *Counters) Add(other Counters) {
	c.Rounds += other.Rounds
	c.MapInput += other.MapInput
	c.Shuffled += other.Shuffled
	c.Groups += other.Groups
	c.Output += other.Output
}

type pair[K cmp.Ordered, V any] struct {
	key K
	val V
}

// Run executes one MapReduce round: mapper is applied to every input
// record and may emit key-value pairs; pairs are sorted by key (stable, so
// reducers see values in emission order within a key); reducer is invoked
// once per distinct key with all its values.
func Run[I any, K cmp.Ordered, V any, O any](
	c *Counters,
	input []I,
	mapper func(rec I, emit func(K, V)),
	reducer func(key K, vals []V, emit func(O)),
) []O {
	c.Rounds++
	c.MapInput += int64(len(input))

	var pairs []pair[K, V]
	emitKV := func(k K, v V) { pairs = append(pairs, pair[K, V]{k, v}) }
	for _, rec := range input {
		mapper(rec, emitKV)
	}
	c.Shuffled += int64(len(pairs))

	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })

	var out []O
	emitOut := func(o O) { out = append(out, o) }
	for lo := 0; lo < len(pairs); {
		hi := lo + 1
		for hi < len(pairs) && pairs[hi].key == pairs[lo].key {
			hi++
		}
		vals := make([]V, hi-lo)
		for i := lo; i < hi; i++ {
			vals[i-lo] = pairs[i].val
		}
		c.Groups++
		reducer(pairs[lo].key, vals, emitOut)
		lo = hi
	}
	c.Output += int64(len(out))
	return out
}
