// Package graph provides the in-memory graph representation shared by every
// algorithm in this repository: a CSR-style adjacency structure over
// undirected simple graphs with dense edge identifiers, plus subgraph and
// neighborhood-subgraph extraction as defined in Section 5.1 of the paper.
//
// Vertices are uint32 IDs. Edges are stored canonically with U < V and are
// assigned dense int32 edge IDs in lexicographic (U,V) order. The adjacency
// of each vertex is sorted by neighbor ID and carries the edge ID alongside,
// so peeling algorithms can update per-edge state in O(1) after a lookup.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected edge stored canonically with U < V.
type Edge struct {
	U, V uint32
}

// Canon returns e with its endpoints swapped if necessary so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Key packs the canonical edge into a single uint64, suitable as a map key.
func (e Edge) Key() uint64 {
	c := e.Canon()
	return uint64(c.U)<<32 | uint64(c.V)
}

// EdgeFromKey is the inverse of Edge.Key.
func EdgeFromKey(k uint64) Edge {
	return Edge{uint32(k >> 32), uint32(k)}
}

// Other returns the endpoint of e that is not w. It panics if w is not an
// endpoint of e.
func (e Edge) Other(w uint32) uint32 {
	switch w {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", w, e))
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is an immutable undirected simple graph in CSR form.
//
// The zero value is an empty graph. Use a Builder or FromEdges to construct
// one. All neighbor lists are sorted by neighbor ID, and each undirected
// edge appears in exactly two adjacency lists with the same edge ID.
type Graph struct {
	off   []int64  // off[v]..off[v+1] delimits v's adjacency; len n+1
	adjV  []uint32 // neighbor vertex IDs, sorted within each vertex
	adjE  []int32  // edge ID parallel to adjV
	edges []Edge   // canonical edge list indexed by edge ID, sorted (U,V)
}

// NumVertices returns n, the number of vertex slots (max vertex ID + 1).
// Isolated vertices count if they were declared to the builder.
func (g *Graph) NumVertices() int {
	if g == nil || len(g.off) == 0 {
		return 0
	}
	return len(g.off) - 1
}

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Size returns |G| = m + n as defined in Section 2 of the paper.
func (g *Graph) Size() int { return g.NumVertices() + g.NumEdges() }

// Degree returns deg(v). Vertices outside [0,n) have degree 0.
func (g *Graph) Degree(v uint32) int {
	if int(v) >= g.NumVertices() {
		return 0
	}
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns v's sorted neighbor list. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v uint32) []uint32 {
	if int(v) >= g.NumVertices() {
		return nil
	}
	return g.adjV[g.off[v]:g.off[v+1]]
}

// IncidentEdges returns the edge IDs incident to v, parallel to Neighbors(v).
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) IncidentEdges(v uint32) []int32 {
	if int(v) >= g.NumVertices() {
		return nil
	}
	return g.adjE[g.off[v]:g.off[v+1]]
}

// Edge returns the canonical edge with the given ID.
func (g *Graph) Edge(id int32) Edge { return g.edges[id] }

// Edges returns the canonical edge list indexed by edge ID. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeID returns the ID of edge (u,v) and whether it exists. The lookup is a
// binary search in the smaller endpoint's adjacency, O(log deg).
func (g *Graph) EdgeID(u, v uint32) (int32, bool) {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	lo, hi := g.off[u], g.off[u+1]
	i := int64(sort.Search(int(hi-lo), func(i int) bool { return g.adjV[lo+int64(i)] >= v })) + lo
	if i < hi && g.adjV[i] == v {
		return g.adjE[i], true
	}
	return 0, false
}

// HasEdge reports whether (u,v) is an edge of g.
func (g *Graph) HasEdge(u, v uint32) bool {
	if u == v || int(u) >= g.NumVertices() || int(v) >= g.NumVertices() {
		return false
	}
	_, ok := g.EdgeID(u, v)
	return ok
}

// MaxDegree returns the maximum degree over all vertices (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(uint32(v)); d > best {
			best = d
		}
	}
	return best
}

// Degrees returns a freshly allocated slice of all vertex degrees.
func (g *Graph) Degrees() []int32 {
	d := make([]int32, g.NumVertices())
	for v := range d {
		d[v] = int32(g.Degree(uint32(v)))
	}
	return d
}

// Builder accumulates edges and produces a Graph. Duplicate edges and
// self-loops are dropped (the paper considers simple graphs). Builders are
// not safe for concurrent use.
type Builder struct {
	edges []Edge
	maxV  uint32
	seen  bool
}

// NewBuilder returns a Builder with capacity for sizeHint edges.
func NewBuilder(sizeHint int) *Builder {
	return &Builder{edges: make([]Edge, 0, sizeHint)}
}

// AddEdge records the undirected edge (u,v). Self-loops are ignored.
func (b *Builder) AddEdge(u, v uint32) {
	if u == v {
		return
	}
	e := Edge{u, v}.Canon()
	b.edges = append(b.edges, e)
	if e.V > b.maxV {
		b.maxV = e.V
	}
	b.seen = true
}

// DeclareVertex ensures the built graph has at least id+1 vertex slots, so
// isolated vertices survive construction.
func (b *Builder) DeclareVertex(id uint32) {
	if id > b.maxV {
		b.maxV = id
	}
	b.seen = true
}

// Build sorts, deduplicates, and freezes the accumulated edges into a Graph.
// The builder may be reused afterwards (it is reset).
func (b *Builder) Build() *Graph {
	edges := b.edges
	var n int
	if b.seen {
		n = int(b.maxV) + 1
	}
	b.edges = nil
	b.maxV = 0
	b.seen = false

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	// Deduplicate in place.
	w := 0
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		edges[w] = e
		w++
	}
	edges = edges[:w]
	return fromSortedEdges(edges, n)
}

// FromEdges builds a graph from an edge list. The input is copied; it need
// not be sorted or deduplicated, and self-loops are dropped.
func FromEdges(edges []Edge) *Graph {
	b := NewBuilder(len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// fromSortedEdges builds the CSR arrays from a sorted, deduplicated canonical
// edge list in O(m+n), with no sorting at all. n must be at least
// maxVertexID+1.
//
// The trick: for any vertex x, every neighbor contributed by an edge (u,x)
// (x on the V side, u < x) is smaller than every neighbor contributed by an
// edge (x,v) (x on the U side, v > x), and because the edge list is sorted
// by (U,V) each side arrives already in ascending order. So each adjacency
// range is split into a low half (V-side entries) and a high half (U-side
// entries) and filled with two cursors; the result is sorted by
// construction. This is also what makes ApplyBatch rebuilds cheap: merging
// an already-sorted edge list with a sorted batch feeds straight into this
// linear pass.
func fromSortedEdges(edges []Edge, n int) *Graph {
	g := &Graph{
		off:   make([]int64, n+1),
		edges: edges,
	}
	deg := make([]int32, n)
	low := make([]int32, n) // # neighbors smaller than v = # edges with V == v
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
		low[e.V]++
	}
	var total int64
	for v := 0; v < n; v++ {
		g.off[v] = total
		total += int64(deg[v])
	}
	g.off[n] = total
	g.adjV = make([]uint32, total)
	g.adjE = make([]int32, total)
	lowCur := make([]int64, n)  // next slot for a smaller neighbor
	highCur := make([]int64, n) // next slot for a larger neighbor
	for v := 0; v < n; v++ {
		lowCur[v] = g.off[v]
		highCur[v] = g.off[v] + int64(low[v])
	}
	for id, e := range edges {
		g.adjV[highCur[e.U]] = e.V
		g.adjE[highCur[e.U]] = int32(id)
		highCur[e.U]++
		g.adjV[lowCur[e.V]] = e.U
		g.adjE[lowCur[e.V]] = int32(id)
		lowCur[e.V]++
	}
	return g
}

// Validate checks structural invariants (sorted adjacency, symmetric edges,
// canonical edge list, no self-loops or duplicates). It is used by tests.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	prev := Edge{}
	for id, e := range g.edges {
		if e.U >= e.V {
			return fmt.Errorf("edge %d not canonical: %v", id, e)
		}
		if int(e.V) >= n {
			return fmt.Errorf("edge %d out of range: %v (n=%d)", id, e, n)
		}
		if id > 0 && !(prev.U < e.U || (prev.U == e.U && prev.V < e.V)) {
			return fmt.Errorf("edge list not strictly sorted at %d: %v then %v", id, prev, e)
		}
		prev = e
	}
	var entries int64
	for v := 0; v < n; v++ {
		lo, hi := g.off[v], g.off[v+1]
		if lo > hi {
			return fmt.Errorf("offsets decrease at vertex %d", v)
		}
		entries += hi - lo
		for i := lo; i < hi; i++ {
			if i > lo && g.adjV[i-1] >= g.adjV[i] {
				return fmt.Errorf("adjacency of %d not strictly sorted", v)
			}
			w := g.adjV[i]
			id := g.adjE[i]
			e := g.edges[id]
			if (Edge{uint32(v), w}).Canon() != e {
				return fmt.Errorf("adjacency entry (%d,%d) maps to wrong edge %v", v, w, e)
			}
		}
	}
	if entries != int64(2*len(g.edges)) {
		return fmt.Errorf("adjacency entries %d != 2m = %d", entries, 2*len(g.edges))
	}
	return nil
}

// ErrVertexRange reports a vertex ID beyond the addressable range.
var ErrVertexRange = errors.New("graph: vertex ID exceeds uint32 range")

// CheckVertexRange validates that ids fit in uint32 (used by file loaders).
func CheckVertexRange(id int64) error {
	if id < 0 || id > math.MaxUint32 {
		return fmt.Errorf("%w: %d", ErrVertexRange, id)
	}
	return nil
}
