package graph

import (
	"math/rand"
	"testing"
)

func randomOrderedGraph(r *rand.Rand, n, m int) *Graph {
	b := NewBuilder(m)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(r.Intn(n)), uint32(r.Intn(n)))
	}
	b.DeclareVertex(uint32(n - 1))
	return b.Build()
}

// checkOriented validates every structural invariant of the degree-ordered
// view against its source graph.
func checkOriented(t *testing.T, g *Graph, o *Oriented) {
	t.Helper()
	n := g.NumVertices()
	m := g.NumEdges()
	if len(o.Rank) != n || len(o.Vert) != n || len(o.Off) != n+1 {
		t.Fatalf("dimension mismatch: rank %d vert %d off %d for n=%d",
			len(o.Rank), len(o.Vert), len(o.Off), n)
	}
	if len(o.Nbr) != m || len(o.EID) != m {
		t.Fatalf("out-list arrays hold %d/%d entries, want m=%d", len(o.Nbr), len(o.EID), m)
	}
	// Rank is a permutation ordered by (degree, ID), Vert its inverse.
	for v := 0; v < n; v++ {
		if o.Vert[o.Rank[v]] != uint32(v) {
			t.Fatalf("Vert[Rank[%d]] = %d", v, o.Vert[o.Rank[v]])
		}
	}
	for r := 1; r < n; r++ {
		a, b := o.Vert[r-1], o.Vert[r]
		da, db := g.Degree(a), g.Degree(b)
		if da > db || (da == db && a >= b) {
			t.Fatalf("rank order violated at %d: vertex %d (deg %d) before %d (deg %d)",
				r, a, da, b, db)
		}
	}
	// Each out-list: ascending ranks strictly above the source rank, edge
	// IDs naming the connecting edge.
	if n > 0 && o.Off[n] != int32(m) {
		t.Fatalf("Off[n] = %d, want m = %d", o.Off[n], m)
	}
	for r := int32(0); int(r) < n; r++ {
		v := o.Vert[r]
		lo, hi := o.Off[r], o.Off[r+1]
		for i := lo; i < hi; i++ {
			rw := o.Nbr[i]
			if rw <= r {
				t.Fatalf("rank %d has out-neighbor rank %d (not higher)", r, rw)
			}
			if i > lo && o.Nbr[i-1] >= rw {
				t.Fatalf("out-list of rank %d not strictly ascending", r)
			}
			w := o.Vert[rw]
			want := Edge{v, w}.Canon()
			if g.Edge(o.EID[i]) != want {
				t.Fatalf("rank %d out-entry %d: edge id %d is %v, want %v",
					r, i, o.EID[i], g.Edge(o.EID[i]), want)
			}
		}
	}
}

func TestOrientedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(120)
		m := r.Intn(6 * n)
		g := randomOrderedGraph(r, n, m)
		checkOriented(t, g, BuildOriented(g))
	}
}

func TestOrientedParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 4200 + r.Intn(2000) // above the parallel-fill cutoff
		m := 3 * n
		g := randomOrderedGraph(r, n, m)
		want := BuildOriented(g)
		for _, workers := range []int{2, 3, 8} {
			got := BuildOrientedParallel(g, workers)
			checkOriented(t, g, got)
			for i := range want.Nbr {
				if want.Nbr[i] != got.Nbr[i] || want.EID[i] != got.EID[i] {
					t.Fatalf("workers %d: out-entry %d differs: (%d,%d) vs (%d,%d)",
						workers, i, want.Nbr[i], want.EID[i], got.Nbr[i], got.EID[i])
				}
			}
		}
	}
}

func TestOrientedEmptyAndTiny(t *testing.T) {
	empty := NewBuilder(0).Build()
	o := BuildOriented(empty)
	if len(o.Rank) != 0 || len(o.Off) != 1 {
		t.Fatalf("empty graph oriented view: %+v", o)
	}
	one := FromEdges([]Edge{{U: 0, V: 1}})
	o = BuildOriented(one)
	if o.Off[2] != 1 || o.MaxOutDegree() != 1 {
		t.Fatalf("single edge oriented view: %+v", o)
	}
	// Lower (degree, ID) endpoint must own the edge: both have degree 1,
	// so vertex 0 (rank 0) points at vertex 1 (rank 1).
	if o.Vert[0] != 0 || o.Nbr[0] != 1 || o.EID[0] != 0 {
		t.Fatalf("orientation of single edge: %+v", o)
	}
}
