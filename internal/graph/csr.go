package graph

import "fmt"

// CSR exposes the graph's raw adjacency arrays: off delimits each
// vertex's slice of adjV/adjE (len n+1), adjV holds neighbor vertex IDs
// sorted within each vertex, and adjE the parallel edge IDs. Together
// with Edges they are the complete on-disk anatomy of a Graph — the
// indexfile writer serializes exactly these four arrays. All returned
// slices alias internal storage and must not be modified.
func (g *Graph) CSR() (off []int64, adjV []uint32, adjE []int32) {
	return g.off, g.adjV, g.adjE
}

// FromCSR wraps pre-built CSR arrays into a Graph without copying — the
// zero-copy inverse of CSR, used by the indexfile reader to alias a
// memory-mapped file. The arrays are retained by reference and must not
// be modified afterwards (for a mapped file they are read-only pages:
// writing would fault).
//
// Only cheap shape invariants are checked here (array lengths agree,
// offsets start at 0 and end at 2m); FromCSR trusts the content beyond
// that — deep validation is Graph.Validate, and the indexfile layer
// guards content integrity with section checksums.
func FromCSR(off []int64, adjV []uint32, adjE []int32, edges []Edge) (*Graph, error) {
	if len(off) < 1 {
		return nil, fmt.Errorf("graph: CSR offsets empty (want length n+1 >= 1)")
	}
	if len(adjV) != len(adjE) {
		return nil, fmt.Errorf("graph: CSR adjacency arrays disagree: %d neighbors, %d edge IDs", len(adjV), len(adjE))
	}
	if len(adjV) != 2*len(edges) {
		return nil, fmt.Errorf("graph: CSR has %d adjacency entries, want 2m = %d", len(adjV), 2*len(edges))
	}
	if off[0] != 0 || off[len(off)-1] != int64(len(adjV)) {
		return nil, fmt.Errorf("graph: CSR offsets span [%d,%d], want [0,%d]", off[0], off[len(off)-1], len(adjV))
	}
	return &Graph{off: off, adjV: adjV, adjE: adjE, edges: edges}, nil
}
