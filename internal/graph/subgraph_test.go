package graph

import (
	"math/rand"
	"testing"
)

func TestVertexSetBasics(t *testing.T) {
	s := NewVertexSet(100)
	if s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(99)
	s.Add(200) // out of range, ignored
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, v := range []uint32{0, 63, 64, 99} {
		if !s.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	if s.Contains(1) || s.Contains(200) {
		t.Fatal("spurious membership")
	}
	s.Remove(63)
	if s.Contains(63) || s.Len() != 3 {
		t.Fatal("Remove failed")
	}
	var seen []uint32
	s.ForEach(func(v uint32) { seen = append(seen, v) })
	want := []uint32{0, 64, 99}
	if len(seen) != len(want) {
		t.Fatalf("ForEach = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", seen, want)
		}
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

// paperFigure3Partition reproduces Example 3: partition of the Figure 2
// graph into P1={a,b,c,l}, P2={d,e,f,g}, P3={h,i,j,k} with vertices
// a=0..l=11.
func fig2Edges() []Edge {
	// Exact edge set of Figure 2 reconstructed from the listed k-classes.
	return []Edge{
		// Phi2
		{8, 10}, // (i,k)
		// Phi3
		{3, 6}, {3, 10}, {3, 11}, {4, 5}, {4, 6}, {5, 6}, {6, 7}, {6, 10}, {6, 11},
		// Phi4
		{5, 7}, {5, 8}, {5, 9}, {7, 8}, {7, 9}, {8, 9},
		// Phi5
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
	}
}

func TestNeighborhoodSubgraphPaperExample(t *testing.T) {
	g := FromEdges(fig2Edges())
	if g.NumEdges() != 26 {
		t.Fatalf("figure 2 graph has %d edges, want 26", g.NumEdges())
	}
	p1 := NewVertexSet(g.NumVertices())
	for _, v := range []uint32{0, 1, 2, 11} { // a,b,c,l
		p1.Add(v)
	}
	ns := NeighborhoodSubgraph(g, p1)
	// Internal edges of NS(P1): (a,b),(a,c),(b,c) i.e. within {0,1,2,11}.
	internal := 0
	for id := range ns.Edges() {
		if ns.Internal[id] {
			internal++
		}
	}
	if internal != 3 {
		t.Fatalf("NS(P1) internal edges = %d, want 3", internal)
	}
	// All edges incident to P1 must be present: degrees of a,b,c = 4 each,
	// l has 2 -> edges incident = 4+4+4+2 - 3 (internal double count) = 11.
	if ns.NumEdges() != 11 {
		t.Fatalf("NS(P1) edges = %d, want 11", ns.NumEdges())
	}
	for id, e := range ns.Edges() {
		if !p1.Contains(e.U) && !p1.Contains(e.V) {
			t.Fatalf("edge %v not incident to P1", e)
		}
		if ns.Internal[id] != (p1.Contains(e.U) && p1.Contains(e.V)) {
			t.Fatalf("internal flag wrong for %v", e)
		}
	}
}

func TestNeighborhoodSubgraphFromEdges(t *testing.T) {
	edges := fig2Edges()
	g := FromEdges(edges)
	u := NewVertexSet(g.NumVertices())
	u.Add(5) // f
	u.Add(7) // h
	a := NeighborhoodSubgraph(g, u)
	b := NeighborhoodSubgraphFromEdges(edges, u, g.NumVertices())
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("mismatch: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v missing from edge-list variant", e)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(fig2Edges())
	u := NewVertexSet(g.NumVertices())
	for _, v := range []uint32{0, 1, 2, 3, 4} { // the 5-clique a..e
		u.Add(v)
	}
	ind := InducedSubgraph(g, u)
	if ind.NumEdges() != 10 {
		t.Fatalf("induced clique edges = %d, want 10", ind.NumEdges())
	}
}

func TestEdgeInducedSubgraph(t *testing.T) {
	g := FromEdges(fig2Edges())
	ids := []int32{0, 1, 2}
	sg := EdgeInducedSubgraph(g, ids)
	if sg.NumEdges() != 3 {
		t.Fatalf("edge-induced edges = %d, want 3", sg.NumEdges())
	}
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 2}, {4, 5}})
	labels, count := ConnectedComponents(g)
	// Components: {0,1,2}, {3}, {4,5}.
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if labels[4] != labels[5] || labels[4] == labels[0] {
		t.Fatal("4,5 mislabeled")
	}
	if labels[3] == labels[0] || labels[3] == labels[4] {
		t.Fatal("isolated vertex should be its own component")
	}
}

func TestConnectedComponentsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := FromEdges(randomEdges(r, 50, 60))
	labels, count := ConnectedComponents(g)
	if count <= 0 {
		t.Fatal("no components")
	}
	for _, e := range g.Edges() {
		if labels[e.U] != labels[e.V] {
			t.Fatalf("edge %v spans components", e)
		}
	}
}
