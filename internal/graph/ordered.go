package graph

import (
	"runtime"
	"sort"
	"sync"
)

// Oriented is the degree-ordered CSR view of a Graph: every vertex gets a
// rank (ascending by degree, ties by vertex ID) and every edge is directed
// from its lower-rank endpoint to its higher-rank one. Adjacency lives in
// rank space — Off/Nbr/EID are indexed and valued by rank, with each
// out-list sorted ascending — so intersecting two out-lists is a linear
// merge of small sorted arrays, and every triangle is discovered exactly
// once at its lowest-rank vertex.
//
// Orienting by degree order bounds every out-degree by O(sqrt(m)) (the
// arboricity argument behind the O(m^1.5) triangle bound; see Burkhardt,
// Faber & Harris, "Bounds and algorithms for graph trusses"), which is what
// makes the layout the cheap substrate for both triangle counting and the
// PKT peeling core's support initialization.
type Oriented struct {
	// Rank maps vertex ID -> rank; lower rank means lower (degree, ID).
	Rank []int32
	// Vert maps rank -> vertex ID (the inverse permutation of Rank).
	Vert []uint32
	// Off delimits the out-list of rank r as Nbr[Off[r]:Off[r+1]];
	// len n+1, Off[n] == m.
	Off []int32
	// Nbr holds out-neighbor ranks, ascending within each out-list.
	Nbr []int32
	// EID holds the connecting edge's ID, parallel to Nbr.
	EID []int32
}

// OutDegree returns the out-degree of rank r.
func (o *Oriented) OutDegree(r int32) int32 { return o.Off[r+1] - o.Off[r] }

// MaxOutDegree returns the largest out-degree over all ranks (0 when empty).
func (o *Oriented) MaxOutDegree() int32 {
	best := int32(0)
	for r := 0; r+1 < len(o.Off); r++ {
		if d := o.Off[r+1] - o.Off[r]; d > best {
			best = d
		}
	}
	return best
}

// BuildOriented constructs the degree-ordered view serially.
func BuildOriented(g *Graph) *Oriented { return BuildOrientedParallel(g, 1) }

// BuildOrientedParallel constructs the degree-ordered view, filling and
// sorting the per-rank out-lists across workers (each out-list is touched
// by exactly one worker, so the fill is race-free by construction).
// workers <= 0 selects GOMAXPROCS.
func BuildOrientedParallel(g *Graph, workers int) *Oriented {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	m := g.NumEdges()
	o := &Oriented{
		Rank: make([]int32, n),
		Vert: make([]uint32, n),
		Off:  make([]int32, n+1),
		Nbr:  make([]int32, m),
		EID:  make([]int32, m),
	}
	if n == 0 {
		return o
	}

	// Counting sort by degree; vertices inside one degree bucket keep
	// ascending ID order, so rank order is exactly (degree, ID).
	maxDeg := 0
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		deg[v] = int32(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	cnt := make([]int32, maxDeg+2)
	for _, d := range deg {
		cnt[d+1]++
	}
	for d := 1; d < len(cnt); d++ {
		cnt[d] += cnt[d-1]
	}
	for v := 0; v < n; v++ {
		r := cnt[deg[v]]
		cnt[deg[v]]++
		o.Rank[v] = r
		o.Vert[r] = uint32(v)
	}

	// Out-degree of rank r = number of neighbors of Vert[r] with higher
	// rank; prefix-sum into Off.
	for v := 0; v < n; v++ {
		rv := o.Rank[v]
		out := int32(0)
		for _, w := range g.Neighbors(uint32(v)) {
			if o.Rank[w] > rv {
				out++
			}
		}
		o.Off[rv+1] = out
	}
	for r := 0; r < n; r++ {
		o.Off[r+1] += o.Off[r]
	}

	// Fill and sort each rank's out-list. Ranks partition the output
	// arrays, so chunking over ranks needs no synchronization beyond the
	// final join.
	fill := func(lo, hi int32) {
		for r := lo; r < hi; r++ {
			v := o.Vert[r]
			nbrs := g.Neighbors(v)
			eids := g.IncidentEdges(v)
			cur := o.Off[r]
			for i, w := range nbrs {
				if rw := o.Rank[w]; rw > r {
					o.Nbr[cur] = rw
					o.EID[cur] = eids[i]
					cur++
				}
			}
			seg := o.Nbr[o.Off[r]:cur]
			ids := o.EID[o.Off[r]:cur]
			sort.Sort(&rankedPair{seg, ids})
		}
	}
	if workers == 1 || n < 4096 {
		fill(0, int32(n))
		return o
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			fill(lo, hi)
		}(int32(lo), int32(hi))
	}
	wg.Wait()
	return o
}

// rankedPair sorts an out-list segment by neighbor rank, carrying the edge
// IDs along.
type rankedPair struct {
	nbr []int32
	eid []int32
}

func (p *rankedPair) Len() int           { return len(p.nbr) }
func (p *rankedPair) Less(i, j int) bool { return p.nbr[i] < p.nbr[j] }
func (p *rankedPair) Swap(i, j int) {
	p.nbr[i], p.nbr[j] = p.nbr[j], p.nbr[i]
	p.eid[i], p.eid[j] = p.eid[j], p.eid[i]
}
