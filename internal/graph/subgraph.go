package graph

// This file implements subgraph extraction, most importantly the
// neighborhood subgraph NS(U) of Definition 4: the subgraph whose edges are
// all edges of G incident to at least one vertex of U. Edges with both
// endpoints in U are "internal"; edges with exactly one endpoint in U are
// "external". The external-memory algorithms compute exact supports and
// local truss numbers on internal edges only.

import "math/bits"

// VertexSet is a bitset over vertex IDs.
type VertexSet struct {
	bits []uint64
	n    int
}

// NewVertexSet returns an empty set able to hold vertices [0,n).
func NewVertexSet(n int) *VertexSet {
	return &VertexSet{bits: make([]uint64, (n+63)/64), n: n}
}

// Add inserts v into the set. IDs beyond the capacity are ignored.
func (s *VertexSet) Add(v uint32) {
	if int(v) >= s.n {
		return
	}
	w := &s.bits[v>>6]
	bit := uint64(1) << (v & 63)
	if *w&bit == 0 {
		*w |= bit
	}
}

// Remove deletes v from the set.
func (s *VertexSet) Remove(v uint32) {
	if int(v) >= s.n {
		return
	}
	s.bits[v>>6] &^= uint64(1) << (v & 63)
}

// Contains reports whether v is in the set.
func (s *VertexSet) Contains(v uint32) bool {
	if int(v) >= s.n {
		return false
	}
	return s.bits[v>>6]&(uint64(1)<<(v&63)) != 0
}

// Len returns the number of vertices in the set.
func (s *VertexSet) Len() int {
	c := 0
	for _, w := range s.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear removes all elements.
func (s *VertexSet) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

// ForEach calls fn for every member in increasing order.
func (s *VertexSet) ForEach(fn func(v uint32)) {
	for i, w := range s.bits {
		for w != 0 {
			b := w & (-w)
			fn(uint32(i*64 + bits.TrailingZeros64(w)))
			w ^= b
		}
	}
}

// Subgraph is a graph extracted from a parent, carrying the classification
// of its edges as internal or external relative to the extraction set U.
type Subgraph struct {
	*Graph
	// Internal[id] reports whether edge id (in the subgraph's own ID space)
	// has both endpoints in U.
	Internal []bool
	// ParentEdge maps the subgraph edge ID to the parent's edge (canonical).
	ParentEdge []Edge
}

// NeighborhoodSubgraph extracts NS(U) from g: all edges with at least one
// endpoint in U. Vertex IDs are preserved (no relabeling), which keeps the
// implementation simple and matches the paper's presentation; the memory
// cost is O(n/8) for bitsets plus the extracted edges.
func NeighborhoodSubgraph(g *Graph, u *VertexSet) *Subgraph {
	var picked []Edge
	for v := 0; v < g.NumVertices(); v++ {
		if !u.Contains(uint32(v)) {
			continue
		}
		nbrs := g.Neighbors(uint32(v))
		for _, w := range nbrs {
			// Take the edge exactly once: from its lower endpoint if both
			// are in U, otherwise from the single endpoint in U.
			if uint32(v) < w || !u.Contains(w) {
				picked = append(picked, Edge{uint32(v), w}.Canon())
			}
		}
	}
	return subgraphFromEdges(picked, u, g.NumVertices())
}

// NeighborhoodSubgraphFromEdges builds NS(U) from a raw edge list (e.g. a
// disk-resident residual graph) without materializing the full parent graph.
// Every input edge incident to U is included.
func NeighborhoodSubgraphFromEdges(edges []Edge, u *VertexSet, n int) *Subgraph {
	var picked []Edge
	for _, e := range edges {
		if u.Contains(e.U) || u.Contains(e.V) {
			picked = append(picked, e.Canon())
		}
	}
	return subgraphFromEdges(picked, u, n)
}

func subgraphFromEdges(picked []Edge, u *VertexSet, n int) *Subgraph {
	g := FromEdges(picked)
	// FromEdges caps n at maxID+1; that is fine since membership checks use
	// the original IDs.
	sg := &Subgraph{
		Graph:      g,
		Internal:   make([]bool, g.NumEdges()),
		ParentEdge: make([]Edge, g.NumEdges()),
	}
	for id, e := range g.Edges() {
		sg.Internal[id] = u.Contains(e.U) && u.Contains(e.V)
		sg.ParentEdge[id] = e
	}
	return sg
}

// InducedSubgraph returns the subgraph of g induced by the vertex set u:
// only edges with both endpoints in U.
func InducedSubgraph(g *Graph, u *VertexSet) *Graph {
	var picked []Edge
	for v := 0; v < g.NumVertices(); v++ {
		if !u.Contains(uint32(v)) {
			continue
		}
		for _, w := range g.Neighbors(uint32(v)) {
			if uint32(v) < w && u.Contains(w) {
				picked = append(picked, Edge{uint32(v), w})
			}
		}
	}
	return FromEdges(picked)
}

// EdgeInducedSubgraph returns the subgraph formed by exactly the given
// parent edge IDs.
func EdgeInducedSubgraph(g *Graph, ids []int32) *Graph {
	picked := make([]Edge, 0, len(ids))
	for _, id := range ids {
		picked = append(picked, g.Edge(id))
	}
	return FromEdges(picked)
}

// ConnectedComponents labels each vertex with a component ID in [0,count)
// and returns the labels and the component count. Isolated vertices get
// their own components.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []uint32
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		id := int32(count)
		count++
		stack = append(stack[:0], uint32(v))
		labels[v] = id
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(x) {
				if labels[w] == -1 {
					labels[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	return labels, count
}
