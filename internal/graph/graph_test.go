package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEdgeCanonKey(t *testing.T) {
	e := Edge{5, 2}
	c := e.Canon()
	if c.U != 2 || c.V != 5 {
		t.Fatalf("Canon(%v) = %v", e, c)
	}
	if got := EdgeFromKey(e.Key()); got != c {
		t.Fatalf("EdgeFromKey(Key) = %v, want %v", got, c)
	}
	if (Edge{2, 5}).Key() != e.Key() {
		t.Fatal("Key not orientation-invariant")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{2, 5}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint should panic")
		}
	}()
	e.Other(7)
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.Size() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(3) != 0 || g.Neighbors(3) != nil {
		t.Fatal("out-of-range vertex should have empty adjacency")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(1, 2)
	b.AddEdge(2, 1) // duplicate reversed
	b.AddEdge(1, 2) // duplicate
	b.AddEdge(3, 3) // self loop dropped
	b.AddEdge(0, 2)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d, want 3", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeclareVertexKeepsIsolated(t *testing.T) {
	b := NewBuilder(1)
	b.AddEdge(0, 1)
	b.DeclareVertex(9)
	g := b.Build()
	if g.NumVertices() != 10 {
		t.Fatalf("n = %d, want 10", g.NumVertices())
	}
	if g.Degree(9) != 0 {
		t.Fatal("isolated vertex should have degree 0")
	}
}

func triangleGraph() *Graph {
	return FromEdges([]Edge{{0, 1}, {1, 2}, {0, 2}})
}

func TestTriangleBasics(t *testing.T) {
	g := triangleGraph()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("unexpected size n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := uint32(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("deg(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 0) || g.HasEdge(0, 5) {
		t.Fatal("HasEdge accepted invalid pair")
	}
	id, ok := g.EdgeID(2, 1)
	if !ok {
		t.Fatal("EdgeID(2,1) missing")
	}
	if g.Edge(id) != (Edge{1, 2}) {
		t.Fatalf("Edge(%d) = %v", id, g.Edge(id))
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestDegreesSlice(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {0, 2}, {0, 3}})
	d := g.Degrees()
	want := []int32{3, 1, 1, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Degrees = %v, want %v", d, want)
		}
	}
}

// randomEdges produces a reproducible random multigraph edge list.
func randomEdges(r *rand.Rand, n, m int) []Edge {
	es := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		es = append(es, Edge{u, v})
	}
	return es
}

func TestRandomGraphValidate(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(60)
		m := r.Intn(4 * n)
		g := FromEdges(randomEdges(r, n, m))
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every edge must be discoverable through both endpoints.
		for id, e := range g.Edges() {
			got, ok := g.EdgeID(e.U, e.V)
			if !ok || got != int32(id) {
				t.Fatalf("edge %v not found by EdgeID", e)
			}
			got, ok = g.EdgeID(e.V, e.U)
			if !ok || got != int32(id) {
				t.Fatalf("edge %v not found reversed", e)
			}
		}
	}
}

func TestAdjacencyEdgeIDsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := FromEdges(randomEdges(r, 40, 120))
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.Neighbors(uint32(v))
		eids := g.IncidentEdges(uint32(v))
		if len(nbrs) != len(eids) {
			t.Fatal("parallel adjacency slices disagree")
		}
		for i := range nbrs {
			e := g.Edge(eids[i])
			if e.Other(uint32(v)) != nbrs[i] {
				t.Fatalf("adjacency of %d entry %d: edge %v neighbor %d", v, i, e, nbrs[i])
			}
		}
	}
}

func TestQuickDegreeSum(t *testing.T) {
	// Property: sum of degrees == 2m for arbitrary random graphs.
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%50) + 2
		m := int(mRaw % 200)
		r := rand.New(rand.NewSource(seed))
		g := FromEdges(randomEdges(r, n, m))
		sum := 0
		for v := 0; v < g.NumVertices(); v++ {
			sum += g.Degree(uint32(v))
		}
		return sum == 2*g.NumEdges() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckVertexRange(t *testing.T) {
	if err := CheckVertexRange(0); err != nil {
		t.Fatal(err)
	}
	if err := CheckVertexRange(1 << 40); err == nil {
		t.Fatal("expected range error")
	}
	if err := CheckVertexRange(-1); err == nil {
		t.Fatal("expected range error for negative")
	}
}
