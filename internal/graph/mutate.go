package graph

import (
	"fmt"
	"sort"
)

// Remap records how edge IDs moved across an ApplyBatch rebuild. Edge IDs
// are dense and lexicographic by (U,V), so inserting or deleting any edge
// shifts every ID behind it; the remap is how decomposition state (truss
// numbers, index permutations) survives a rebuild without recomputation.
type Remap struct {
	// OldToNew[oldID] is the surviving edge's ID in the new graph, or -1
	// when the batch deleted it.
	OldToNew []int32
	// NewToOld[newID] is the edge's ID in the old graph, or -1 when the
	// batch inserted it.
	NewToOld []int32
	// Added lists the new-graph IDs of inserted edges, ascending.
	Added []int32
	// Deleted lists the old-graph IDs of deleted edges, ascending.
	Deleted []int32
}

// ApplyBatch produces the graph that results from deleting dels and then
// inserting adds, plus the edge-ID remap between the two graphs. The
// receiver is not modified. Self-loops and duplicates in either list are
// ignored, as are deletions of absent edges and insertions of present
// ones; an edge appearing in both lists ends up present (and, if it
// already existed, counts as a survivor, not an insert). The vertex-ID
// space never shrinks — deleting a vertex's last edge leaves the slot — and
// grows to cover the largest inserted endpoint.
//
// Cost is O(m + n + b log b) for a batch of b edges: the batch is sorted,
// merged with the already-sorted edge list, and the CSR arrays are rebuilt
// with the linear two-cursor fill — the existing adjacency order is reused,
// never re-sorted.
func (g *Graph) ApplyBatch(adds, dels []Edge) (*Graph, *Remap) {
	addSet := canonBatch(adds)
	delSet := canonBatch(dels)

	oldEdges := g.Edges()
	m := len(oldEdges)
	re := &Remap{
		OldToNew: make([]int32, m),
	}

	// Resolve deletions against the old edge list: an old edge dies iff it
	// is in dels and not re-inserted by adds.
	dead := make([]bool, m)
	for _, d := range delSet {
		if int(d.V) >= g.NumVertices() {
			continue // endpoints out of range: the edge cannot exist
		}
		if id, ok := g.EdgeID(d.U, d.V); ok && !edgeInSorted(addSet, d) {
			dead[id] = true
		}
	}
	// Keep only genuinely new edges in the insert list.
	inserts := addSet[:0]
	for _, a := range addSet {
		if !g.HasEdge(a.U, a.V) {
			inserts = append(inserts, a)
		}
	}

	n := g.NumVertices()
	for _, a := range inserts {
		if int(a.V)+1 > n {
			n = int(a.V) + 1
		}
	}

	// Merge the surviving old edges (sorted) with the inserts (sorted)
	// into the new sorted edge list, recording the remap as IDs are
	// assigned.
	newEdges := make([]Edge, 0, m+len(inserts))
	re.NewToOld = make([]int32, 0, m+len(inserts))
	i, j := 0, 0
	for i < m || j < len(inserts) {
		takeOld := j >= len(inserts)
		if !takeOld && i < m {
			takeOld = edgeLess(oldEdges[i], inserts[j])
		}
		if takeOld && i < m {
			if dead[i] {
				re.OldToNew[i] = -1
				re.Deleted = append(re.Deleted, int32(i))
				i++
				continue
			}
			re.OldToNew[i] = int32(len(newEdges))
			re.NewToOld = append(re.NewToOld, int32(i))
			newEdges = append(newEdges, oldEdges[i])
			i++
		} else {
			re.Added = append(re.Added, int32(len(newEdges)))
			re.NewToOld = append(re.NewToOld, -1)
			newEdges = append(newEdges, inserts[j])
			j++
		}
	}
	// Small batches patch the old adjacency (sequential copy + edge-ID
	// translation) instead of re-scattering every entry; large ones
	// amortize the scatter fill.
	if 8*(len(re.Added)+len(re.Deleted)) < m {
		return g.patchAdjacency(newEdges, re, n), re
	}
	return fromSortedEdges(newEdges, n), re
}

// patchAdjacency builds the post-batch CSR by copying the receiver's
// adjacency: surviving entries stream through in order (their edge IDs
// translated via the remap), deleted entries are dropped, and each
// touched vertex's insertions are merged in at their sorted positions.
// Compared to fromSortedEdges this touches the same O(m) entries but
// reads and writes them sequentially, which is what makes a single-edge
// ApplyBatch on a 100k-edge graph a sub-millisecond operation.
func (g *Graph) patchAdjacency(newEdges []Edge, re *Remap, n int) *Graph {
	g2 := &Graph{
		off:   make([]int64, n+1),
		adjV:  make([]uint32, 2*len(newEdges)),
		adjE:  make([]int32, 2*len(newEdges)),
		edges: newEdges,
	}
	// Sorted insertion entries per vertex. Added IDs ascend in (U,V)
	// order, so each vertex's entries arrive neighbor-sorted on both the
	// U side (V ascending) and the V side (U ascending).
	type adjEntry struct {
		w  uint32
		id int32
	}
	adds := map[uint32][]adjEntry{}
	for _, id := range re.Added {
		e := newEdges[id]
		adds[e.U] = append(adds[e.U], adjEntry{e.V, id})
		adds[e.V] = append(adds[e.V], adjEntry{e.U, id})
	}

	nOld := g.NumVertices()
	w := int64(0)
	for v := 0; v < n; v++ {
		g2.off[v] = w
		var oldV []uint32
		var oldE []int32
		if v < nOld {
			lo, hi := g.off[v], g.off[v+1]
			oldV, oldE = g.adjV[lo:hi], g.adjE[lo:hi]
		}
		ins := adds[uint32(v)]
		i := 0
		for _, id := range oldE {
			nid := re.OldToNew[id]
			if nid < 0 {
				oldV = oldV[1:]
				continue // deleted edge
			}
			u := oldV[0]
			oldV = oldV[1:]
			for i < len(ins) && ins[i].w < u {
				g2.adjV[w] = ins[i].w
				g2.adjE[w] = ins[i].id
				w++
				i++
			}
			g2.adjV[w] = u
			g2.adjE[w] = nid
			w++
		}
		for ; i < len(ins); i++ {
			g2.adjV[w] = ins[i].w
			g2.adjE[w] = ins[i].id
			w++
		}
	}
	g2.off[n] = w
	return g2
}

// canonBatch canonicalizes, sorts, and deduplicates a batch edge list,
// dropping self-loops. The input is not modified.
func canonBatch(batch []Edge) []Edge {
	out := make([]Edge, 0, len(batch))
	for _, e := range batch {
		if e.U == e.V {
			continue
		}
		out = append(out, e.Canon())
	}
	sort.Slice(out, func(i, j int) bool { return edgeLess(out[i], out[j]) })
	w := 0
	for i, e := range out {
		if i > 0 && e == out[i-1] {
			continue
		}
		out[w] = e
		w++
	}
	return out[:w]
}

// edgeLess orders canonical edges lexicographically by (U, V).
func edgeLess(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// edgeInSorted reports whether e is in the sorted canonical list s.
func edgeInSorted(s []Edge, e Edge) bool {
	i := sort.Search(len(s), func(i int) bool { return !edgeLess(s[i], e) })
	return i < len(s) && s[i] == e
}

// FromCanonicalEdges builds a graph directly from an already canonical
// edge list — strictly sorted by (U, V), U < V for every edge, largest
// endpoint below n — skipping the Builder's sort and dedup passes. The
// snapshot loader uses it to rebuild a persisted graph in O(m). The input
// order is verified in one linear pass; the slice is retained by the
// graph and must not be modified afterwards.
func FromCanonicalEdges(edges []Edge, n int) (*Graph, error) {
	for i, e := range edges {
		if e.U >= e.V {
			return nil, fmt.Errorf("graph: edge %d not canonical: %v", i, e)
		}
		if int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge %d out of vertex range: %v (n=%d)", i, e, n)
		}
		if i > 0 && !edgeLess(edges[i-1], e) {
			return nil, fmt.Errorf("graph: edge list not strictly sorted at %d: %v then %v", i, edges[i-1], e)
		}
	}
	return fromSortedEdges(edges, n), nil
}
