package graph

import (
	"math/rand"
	"testing"
)

// applyNaive computes the expected post-batch graph the slow way: rebuild
// from the final edge set with the ordinary Builder.
func applyNaive(g *Graph, adds, dels []Edge) *Graph {
	final := map[uint64]Edge{}
	for _, e := range g.Edges() {
		final[e.Key()] = e
	}
	for _, e := range dels {
		if e.U != e.V {
			delete(final, e.Canon().Key())
		}
	}
	maxV := uint32(0)
	for _, e := range adds {
		if e.U == e.V {
			continue
		}
		c := e.Canon()
		final[c.Key()] = c
		if c.V > maxV {
			maxV = c.V
		}
	}
	b := NewBuilder(len(final))
	for _, e := range final {
		b.AddEdge(e.U, e.V)
	}
	if g.NumVertices() > 0 {
		b.DeclareVertex(uint32(g.NumVertices() - 1))
	}
	if maxV > 0 {
		b.DeclareVertex(maxV)
	}
	return b.Build()
}

func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("n = %d, want %d", got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("m = %d, want %d", got.NumEdges(), want.NumEdges())
	}
	for id, e := range want.Edges() {
		if got.Edge(int32(id)) != e {
			t.Fatalf("edge %d = %v, want %v", id, got.Edge(int32(id)), e)
		}
	}
}

func checkRemap(t *testing.T, old, now *Graph, re *Remap) {
	t.Helper()
	if len(re.OldToNew) != old.NumEdges() || len(re.NewToOld) != now.NumEdges() {
		t.Fatalf("remap sizes %d/%d, want %d/%d",
			len(re.OldToNew), len(re.NewToOld), old.NumEdges(), now.NumEdges())
	}
	deleted := map[int32]bool{}
	for _, d := range re.Deleted {
		deleted[d] = true
	}
	for oldID, newID := range re.OldToNew {
		switch {
		case newID < 0:
			if !deleted[int32(oldID)] {
				t.Fatalf("old edge %d mapped to -1 but not in Deleted", oldID)
			}
		default:
			if old.Edge(int32(oldID)) != now.Edge(newID) {
				t.Fatalf("old edge %d %v remapped to %v", oldID, old.Edge(int32(oldID)), now.Edge(newID))
			}
			if re.NewToOld[newID] != int32(oldID) {
				t.Fatalf("NewToOld[%d] = %d, want %d", newID, re.NewToOld[newID], oldID)
			}
		}
	}
	added := map[int32]bool{}
	for _, a := range re.Added {
		added[a] = true
	}
	for newID, oldID := range re.NewToOld {
		if oldID < 0 && !added[int32(newID)] {
			t.Fatalf("new edge %d has no old ID but not in Added", newID)
		}
		if oldID >= 0 && added[int32(newID)] {
			t.Fatalf("new edge %d both remapped and Added", newID)
		}
	}
}

func TestApplyBatchBasic(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	g2, re := g.ApplyBatch([]Edge{{3, 0}, {1, 3}}, []Edge{{2, 3}})
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g2, applyNaive(g, []Edge{{3, 0}, {1, 3}}, []Edge{{2, 3}}))
	checkRemap(t, g, g2, re)
	if len(re.Added) != 2 || len(re.Deleted) != 1 {
		t.Fatalf("added %d deleted %d, want 2/1", len(re.Added), len(re.Deleted))
	}
}

func TestApplyBatchNoOps(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}, {1, 2}})
	// Self-loops, duplicate adds, adds of present edges, dels of absent
	// edges, and delete+re-add must all collapse to no changes.
	g2, re := g.ApplyBatch(
		[]Edge{{1, 0}, {0, 1}, {2, 2}, {1, 2}},
		[]Edge{{0, 1}, {5, 6}, {3, 3}},
	)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g2, g)
	checkRemap(t, g, g2, re)
	if len(re.Added) != 0 || len(re.Deleted) != 0 {
		t.Fatalf("added %v deleted %v, want none", re.Added, re.Deleted)
	}
}

func TestApplyBatchGrowsVertexSpace(t *testing.T) {
	g := FromEdges([]Edge{{0, 1}})
	g2, _ := g.ApplyBatch([]Edge{{7, 9}}, nil)
	if g2.NumVertices() != 10 {
		t.Fatalf("n = %d, want 10", g2.NumVertices())
	}
	// Deleting the last edge of a vertex keeps the slot.
	g3, _ := g2.ApplyBatch(nil, []Edge{{7, 9}})
	if g3.NumVertices() != 10 {
		t.Fatalf("n after delete = %d, want 10", g3.NumVertices())
	}
	if g3.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", g3.NumEdges())
	}
}

func TestApplyBatchEmptyGraph(t *testing.T) {
	var g Graph
	g2, re := g.ApplyBatch([]Edge{{0, 1}, {1, 2}}, nil)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 || g2.NumVertices() != 3 {
		t.Fatalf("got m=%d n=%d", g2.NumEdges(), g2.NumVertices())
	}
	checkRemap(t, &g, g2, re)
}

func TestApplyBatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
		}
		g := FromEdges(edges)
		var adds, dels []Edge
		for i := 0; i < 1+rng.Intn(10); i++ {
			adds = append(adds, Edge{uint32(rng.Intn(n + 5)), uint32(rng.Intn(n + 5))})
		}
		old := g.Edges()
		for i := 0; i < 1+rng.Intn(10) && len(old) > 0; i++ {
			dels = append(dels, old[rng.Intn(len(old))])
		}
		g2, re := g.ApplyBatch(adds, dels)
		if err := g2.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameGraph(t, g2, applyNaive(g, adds, dels))
		checkRemap(t, g, g2, re)
	}
}

func TestFromCanonicalEdges(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 5}}
	g, err := FromCanonicalEdges(edges, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || g.NumEdges() != 4 {
		t.Fatalf("got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for _, bad := range [][]Edge{
		{{1, 0}},         // not canonical
		{{0, 1}, {0, 1}}, // duplicate
		{{0, 2}, {0, 1}}, // out of order
		{{0, 9}},         // beyond n
		{{3, 3}},         // self-loop
	} {
		if _, err := FromCanonicalEdges(bad, 6); err == nil {
			t.Fatalf("FromCanonicalEdges(%v) accepted invalid input", bad)
		}
	}
}
