package graph

import (
	"math/rand"
	"testing"
)

func benchEdges(n, m int, seed int64) []Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))}
	}
	return edges
}

func BenchmarkFromEdges(b *testing.B) {
	edges := benchEdges(10000, 100000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := FromEdges(edges)
		if g.NumEdges() == 0 {
			b.Fatal("no edges")
		}
	}
}

func BenchmarkEdgeID(b *testing.B) {
	g := FromEdges(benchEdges(10000, 100000, 1))
	es := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := es[i%len(es)]
		if _, ok := g.EdgeID(e.U, e.V); !ok {
			b.Fatal("missing edge")
		}
	}
}

func BenchmarkNeighborhoodSubgraph(b *testing.B) {
	g := FromEdges(benchEdges(10000, 100000, 1))
	u := NewVertexSet(g.NumVertices())
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		u.Add(uint32(r.Intn(g.NumVertices())))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg := NeighborhoodSubgraph(g, u)
		if sg.NumEdges() == 0 {
			b.Fatal("empty NS")
		}
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := FromEdges(benchEdges(10000, 30000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, c := ConnectedComponents(g); c == 0 {
			b.Fatal("no components")
		}
	}
}
