// Package core implements the paper's in-memory truss-decomposition
// algorithms: the improved TD-inmem+ (Algorithm 2, O(m^1.5) time and O(m+n)
// space, matching the triangle-listing lower bound) and Cohen's original
// TD-inmem (Algorithm 1), which the paper uses as its in-memory baseline.
// It also provides the threshold Peeler reused by the external-memory
// algorithms (Procedures 5, 8, 9, 10) and naive reference implementations
// for testing.
//
// Terminology follows the paper: sup(e) is the number of triangles
// containing edge e; the k-truss T_k is the largest subgraph with every
// edge's support >= k-2 inside the subgraph; phi(e) (the truss number) is
// the largest k with e in T_k; the k-class Phi_k is {e : phi(e) = k}.
package core

import (
	"context"

	"repro/internal/graph"
	"repro/internal/triangle"
)

// Hooks observes a decomposition as it runs. The zero value observes
// nothing and costs nothing.
type Hooks struct {
	// OnLevel is invoked when peeling reaches a new level k (including the
	// initial level 2). It runs on the decomposing goroutine and must be
	// cheap.
	OnLevel func(k int32)
	// OnRound is invoked by the PKT engine at the start of each
	// bulk-synchronous sub-round with the current level and frontier size.
	// It runs on the coordinating goroutine and must be cheap. Serial
	// engines never call it.
	OnRound func(k int32, frontier int)
}

// ctxCheckMask throttles cancellation checks in the peeling loops: the
// context is polled once per (mask+1) removed edges, so cancellation costs
// one select per ~1k edges and nothing at all under context.Background().
const ctxCheckMask = 1023

// cancelled reports whether done (a context's Done channel, possibly nil)
// has fired.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Result is a truss decomposition of a graph: the truss number of every
// edge plus derived views (classes and trusses).
type Result struct {
	// G is the decomposed graph.
	G *graph.Graph
	// Phi[id] is the truss number of edge id; always >= 2.
	Phi []int32
	// KMax is the maximum truss number over all edges (2 if the graph has
	// edges but no triangles; 0 for an edgeless graph).
	KMax int32
	// PKT holds the bulk-synchronous run's shape when the PKT engine
	// produced this result; nil for the serial engines (including PKT's
	// single-worker fallback).
	PKT *PKTStats
}

// Class returns the edge IDs of the k-class Phi_k, in increasing ID order.
func (r *Result) Class(k int32) []int32 {
	var out []int32
	for id, p := range r.Phi {
		if p == k {
			out = append(out, int32(id))
		}
	}
	return out
}

// ClassSizes returns |Phi_k| for k = 0..KMax (entries 0 and 1 are zero).
func (r *Result) ClassSizes() []int64 {
	sizes := make([]int64, r.KMax+1)
	for _, p := range r.Phi {
		sizes[p]++
	}
	return sizes
}

// TrussEdges returns the edge IDs of the k-truss T_k (all edges with
// phi >= k).
func (r *Result) TrussEdges(k int32) []int32 {
	var out []int32
	for id, p := range r.Phi {
		if p >= k {
			out = append(out, int32(id))
		}
	}
	return out
}

// Truss materializes the k-truss as a graph (vertex IDs preserved).
func (r *Result) Truss(k int32) *graph.Graph {
	return graph.EdgeInducedSubgraph(r.G, r.TrussEdges(k))
}

// MaxTruss returns the kmax-truss, the innermost non-empty truss.
func (r *Result) MaxTruss() *graph.Graph { return r.Truss(r.KMax) }

// ClassMap returns phi keyed by canonical edge, for cross-algorithm
// comparisons where edge IDs differ.
func (r *Result) ClassMap() map[uint64]int32 {
	m := make(map[uint64]int32, len(r.Phi))
	for id, p := range r.Phi {
		m[r.G.Edge(int32(id)).Key()] = p
	}
	return m
}

// Decompose runs the improved in-memory algorithm (Algorithm 2,
// TD-inmem+): supports are computed by oriented triangle counting, edges
// are bin-sorted by support, and the peeling loop enumerates each removed
// edge's triangles through its lower-degree endpoint with a membership
// test, giving O(m^1.5) total time.
func Decompose(g *graph.Graph) *Result {
	r, _ := DecomposeCtx(context.Background(), g, Hooks{})
	return r
}

// DecomposeCtx is Decompose with cancellation and observation: the context
// is checked between peeling levels and every ~1k removed edges, and hooks
// (if set) see each level transition. The only possible error is ctx.Err().
func DecomposeCtx(ctx context.Context, g *graph.Graph, h Hooks) (*Result, error) {
	sup := triangle.Supports(g)
	return decomposePeel(ctx, g, sup, false, h)
}

// DecomposeBaseline runs Cohen's algorithm (Algorithm 1, TD-inmem) as
// published, with both of its Theta(sum of deg^2) components: Steps 2-3
// initialize sup(e) = |nb(u) ∩ nb(v)| by full intersection of both
// adjacency lists per edge (the paper notes this "can be made faster using
// the in-memory triangle counting algorithm" — i.e. Algorithm 1 itself does
// not), and Step 5 re-intersects both full lists for every removed edge.
// On graphs with high-degree hubs this is the bottleneck the paper's
// Table 3 measures; Decompose replaces both with O(m^1.5) machinery.
func DecomposeBaseline(g *graph.Graph) *Result {
	r, _ := DecomposeBaselineCtx(context.Background(), g, Hooks{})
	return r
}

// DecomposeBaselineCtx is DecomposeBaseline with cancellation and
// observation, mirroring DecomposeCtx.
func DecomposeBaselineCtx(ctx context.Context, g *graph.Graph, h Hooks) (*Result, error) {
	sup := triangle.SupportsNaive(g)
	return decomposePeel(ctx, g, sup, true, h)
}

// decomposePeel is the shared bin-sorted peeling loop. When fullMerge is
// true, triangle enumeration uses the Algorithm 1 strategy; otherwise the
// Algorithm 2 strategy.
func decomposePeel(ctx context.Context, g *graph.Graph, sup []int32, fullMerge bool, h Hooks) (*Result, error) {
	m := g.NumEdges()
	res := &Result{G: g, Phi: make([]int32, m)}
	if m == 0 {
		return res, nil
	}

	// Bin sort edge IDs by support (the sorted edge array A of the paper).
	maxSup := int32(0)
	for _, s := range sup {
		if s > maxSup {
			maxSup = s
		}
	}
	bin := make([]int32, maxSup+2)
	for _, s := range sup {
		bin[s]++
	}
	start := int32(0)
	for s := int32(0); s <= maxSup; s++ {
		cnt := bin[s]
		bin[s] = start
		start += cnt
	}
	bin[maxSup+1] = start
	arr := make([]int32, m) // edge IDs ordered by current support
	pos := make([]int32, m) // pos[e] = index of e in arr
	cursor := make([]int32, maxSup+1)
	copy(cursor, bin[:maxSup+1])
	for e := 0; e < m; e++ {
		p := cursor[sup[e]]
		arr[p] = int32(e)
		pos[e] = p
		cursor[sup[e]]++
	}

	removed := make([]bool, m)

	// demote moves edge x one support bin down (x's support must exceed
	// the support of the edge currently being removed, so its bin start is
	// strictly right of the processing pointer).
	demote := func(x int32) {
		s := sup[x]
		ps := bin[s]
		px := pos[x]
		y := arr[ps]
		if y != x {
			arr[ps], arr[px] = x, y
			pos[x], pos[y] = ps, px
		}
		bin[s]++
		sup[x]--
	}

	done := ctx.Done()
	k := int32(2)
	if h.OnLevel != nil {
		h.OnLevel(k)
	}
	for i := 0; i < m; i++ {
		if i&ctxCheckMask == 0 && cancelled(done) {
			return nil, ctx.Err()
		}
		e := arr[i]
		if sup[e]+2 > k {
			k = sup[e] + 2
			if h.OnLevel != nil {
				h.OnLevel(k)
			}
			if cancelled(done) {
				return nil, ctx.Err()
			}
		}
		res.Phi[e] = k
		removed[e] = true
		se := sup[e]
		ed := g.Edge(e)
		u, v := ed.U, ed.V

		// visit processes one triangle (u,v,w): decrement the two partner
		// edges if still above the current peeling level.
		visit := func(euw, evw int32) {
			if sup[euw] > se {
				demote(euw)
			}
			if sup[evw] > se {
				demote(evw)
			}
		}

		if fullMerge {
			// Algorithm 1: full merge of both adjacency lists.
			forEachTriangleMerge(g, u, v, removed, visit)
		} else {
			// Algorithm 2: iterate the lower-degree endpoint, membership
			// test for the closing edge.
			forEachTriangleProbe(g, u, v, removed, visit)
		}
	}
	res.KMax = k
	return res, nil
}

// forEachTriangleProbe enumerates the live triangles of edge (u,v) with
// the Algorithm 2 strategy: iterate the lower-degree endpoint's adjacency
// and membership-test the closing edge. The membership test adapts to the
// degree gap — binary probing into the larger list when it is much larger
// (the regime where Algorithm 1's full merge loses), a two-pointer merge
// otherwise (where merging is cheaper than probing, as on low-skew graphs
// like the paper's Amazon).
func forEachTriangleProbe(g *graph.Graph, u, v uint32, removed []bool, fn func(euw, evw int32)) {
	du, dv := g.Degree(u), g.Degree(v)
	if du > dv {
		u, v = v, u
		du, dv = dv, du
	}
	// Probe pays ~log2(dv) per candidate; merge pays (du+dv)/du per
	// candidate. Probe only when the gap is decisive.
	if dv >= 16*du {
		nbrs := g.Neighbors(u)
		eids := g.IncidentEdges(u)
		for i, w := range nbrs {
			if w == v {
				continue
			}
			euw := eids[i]
			if removed[euw] {
				continue
			}
			evw, ok := g.EdgeID(v, w)
			if !ok || removed[evw] {
				continue
			}
			fn(euw, evw)
		}
		return
	}
	forEachTriangleMerge(g, u, v, removed, fn)
}

// forEachTriangleMerge enumerates the live triangles of edge (u,v) by a
// full sorted merge of both adjacency lists (Algorithm 1, Step 5), costing
// O(deg(u)+deg(v)) regardless of how few triangles survive.
func forEachTriangleMerge(g *graph.Graph, u, v uint32, removed []bool, fn func(euw, evw int32)) {
	un, ue := g.Neighbors(u), g.IncidentEdges(u)
	vn, ve := g.Neighbors(v), g.IncidentEdges(v)
	i, j := 0, 0
	for i < len(un) && j < len(vn) {
		switch {
		case un[i] < vn[j]:
			i++
		case un[i] > vn[j]:
			j++
		default:
			if w := un[i]; w != u && w != v {
				euw, evw := ue[i], ve[j]
				if !removed[euw] && !removed[evw] {
					fn(euw, evw)
				}
			}
			i++
			j++
		}
	}
}
