package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/triangle"
)

func TestSupportsParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 15; trial++ {
		n := 10 + r.Intn(80)
		m := 2*n + r.Intn(6*n)
		g := randomGraph(r, n, m)
		want := triangle.Supports(g)
		for _, workers := range []int{2, 4, 8} {
			got := triangle.SupportsParallel(g, workers)
			if len(got) != len(want) {
				t.Fatalf("len %d vs %d", len(got), len(want))
			}
			for id := range want {
				if got[id] != want[id] {
					t.Fatalf("trial %d workers %d edge %d: %d vs %d",
						trial, workers, id, got[id], want[id])
				}
			}
		}
	}
}

func TestSupportsParallelEdgeCases(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if got := triangle.SupportsParallel(empty, 4); len(got) != 0 {
		t.Fatal("empty graph should yield no supports")
	}
	one := graph.FromEdges([]graph.Edge{{U: 0, V: 1}})
	if got := triangle.SupportsParallel(one, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single edge: %v", got)
	}
}

func TestDecomposeParallelPaperExample(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	for _, workers := range []int{0, 2, 4, 8} {
		r := DecomposeParallel(g, workers)
		checkAgainstFig2(t, "DecomposeParallel", r)
	}
}

func TestDecomposeParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 10 + r.Intn(90)
		m := 2*n + r.Intn(6*n)
		g := randomGraph(r, n, m)
		want := Decompose(g)
		for _, workers := range []int{2, 4, 8} {
			got := DecomposeParallel(g, workers)
			if err := EqualResults(want, got); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
		}
	}
}

func TestDecomposeParallelLargerGraph(t *testing.T) {
	// A denser graph with deep cascades exercises multi-sub-round levels
	// and the parallel dispatch path (frontiers above the serial cutoff).
	r := rand.New(rand.NewSource(7))
	var edges []graph.Edge
	const n = 600
	for i := 0; i < 12000; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
	}
	// Overlay cliques for high truss classes.
	for c := 0; c < 3; c++ {
		base := uint32(c * 40)
		for i := uint32(0); i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j})
			}
		}
	}
	g := graph.FromEdges(edges)
	want := Decompose(g)
	got := DecomposeParallel(g, 8)
	if err := EqualResults(want, got); err != nil {
		t.Fatal(err)
	}
	if err := Verify(got); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeParallelTrivial(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if r := DecomposeParallel(empty, 4); r.KMax != 0 {
		t.Fatal("empty graph")
	}
	tri := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	r := DecomposeParallel(tri, 4)
	if r.KMax != 3 {
		t.Fatalf("triangle kmax = %d", r.KMax)
	}
}
