package core

import (
	"repro/internal/graph"
)

// Peeler performs iterative threshold peeling: repeatedly remove eligible
// edges whose support has fallen to or below a threshold, decrementing the
// supports of their triangle partners. It is the engine behind Procedure 5
// (bottom-up, threshold k-2 over internal edges), Procedure 8 (top-down,
// threshold k-3 over internal edges), and their out-of-core variants
// (Procedures 9 and 10).
//
// Unlike the bin-sorted array in Decompose, the Peeler uses a simple work
// queue: thresholds here are fixed per call rather than swept, so the queue
// achieves the same O(triangles touched) cost without the bin bookkeeping.
type Peeler struct {
	g         *graph.Graph
	sup       []int32
	dead      []bool // dead[id] == true once the edge is removed
	removable []bool // nil means every edge is removable
	queue     []int32
	inQueue   []bool
}

// NewPeeler wraps g with initial supports sup. sup is owned by the Peeler
// afterwards and mutated in place.
func NewPeeler(g *graph.Graph, sup []int32) *Peeler {
	m := g.NumEdges()
	return &Peeler{
		g:       g,
		sup:     sup,
		dead:    make([]bool, m),
		inQueue: make([]bool, m),
	}
}

// Restrict limits removals to edges with removable[id] true (e.g. the
// internal edges of a neighborhood subgraph). Supports of non-removable
// edges are still decremented when their triangles die.
func (p *Peeler) Restrict(removable []bool) { p.removable = removable }

// MarkDead removes edge id up front, without cascading and without
// reporting it from PeelTo. The top-down procedures use this to exclude
// ineligible edges (those provably outside T_k) from triangle enumeration.
func (p *Peeler) MarkDead(id int32) { p.dead[id] = true }

// Sup returns the current support of edge id.
func (p *Peeler) Sup(id int32) int32 { return p.sup[id] }

// Alive reports whether edge id has not been removed.
func (p *Peeler) Alive(id int32) bool { return !p.dead[id] }

// AliveCount returns the number of edges not yet removed.
func (p *Peeler) AliveCount() int {
	c := 0
	for _, d := range p.dead {
		if !d {
			c++
		}
	}
	return c
}

func (p *Peeler) removableEdge(id int32) bool {
	return p.removable == nil || p.removable[id]
}

// PeelTo removes every removable edge whose support is <= threshold,
// cascading through support decrements, and returns the removed edge IDs in
// removal order. Calling with increasing thresholds peels classes in
// sequence.
func (p *Peeler) PeelTo(threshold int32) []int32 {
	p.queue = p.queue[:0]
	for id := range p.dead {
		if !p.dead[id] && p.removableEdge(int32(id)) && p.sup[id] <= threshold {
			p.queue = append(p.queue, int32(id))
			p.inQueue[id] = true
		}
	}
	var removed []int32
	for len(p.queue) > 0 {
		e := p.queue[0]
		p.queue = p.queue[1:]
		p.inQueue[e] = false
		if p.dead[e] || p.sup[e] > threshold {
			continue
		}
		p.dead[e] = true
		removed = append(removed, e)
		ed := p.g.Edge(e)
		forEachTriangleProbe(p.g, ed.U, ed.V, p.dead, func(euw, evw int32) {
			p.decrement(euw, threshold)
			p.decrement(evw, threshold)
		})
	}
	return removed
}

// decrement lowers the support of a surviving edge and enqueues it if it
// became peelable at this threshold.
func (p *Peeler) decrement(e, threshold int32) {
	if p.sup[e] > 0 {
		p.sup[e]--
	}
	if !p.dead[e] && p.removableEdge(e) && p.sup[e] <= threshold && !p.inQueue[e] {
		p.queue = append(p.queue, e)
		p.inQueue[e] = true
	}
}
