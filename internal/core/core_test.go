package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/kcore"
	"repro/internal/triangle"
)

// fig2Edges reconstructs the Figure 2 running example exactly from the
// k-classes listed in Example 2 of the paper (vertices a..l = 0..11).
func fig2Edges() []graph.Edge {
	return []graph.Edge{
		{U: 8, V: 10}, // Phi2: (i,k)
		// Phi3: (d,g),(d,k),(d,l),(e,f),(e,g),(f,g),(g,h),(g,k),(g,l)
		{U: 3, V: 6}, {U: 3, V: 10}, {U: 3, V: 11}, {U: 4, V: 5}, {U: 4, V: 6},
		{U: 5, V: 6}, {U: 6, V: 7}, {U: 6, V: 10}, {U: 6, V: 11},
		// Phi4: (f,h),(f,i),(f,j),(h,i),(h,j),(i,j)
		{U: 5, V: 7}, {U: 5, V: 8}, {U: 5, V: 9}, {U: 7, V: 8}, {U: 7, V: 9}, {U: 8, V: 9},
		// Phi5: clique {a,b,c,d,e}
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, {U: 1, V: 2},
		{U: 1, V: 3}, {U: 1, V: 4}, {U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4},
	}
}

// fig2Phi returns the expected truss number keyed by canonical edge.
func fig2Phi() map[uint64]int32 {
	want := map[uint64]int32{}
	set := func(u, v uint32, k int32) { want[(graph.Edge{U: u, V: v}).Key()] = k }
	set(8, 10, 2)
	for _, e := range [][2]uint32{{3, 6}, {3, 10}, {3, 11}, {4, 5}, {4, 6}, {5, 6}, {6, 7}, {6, 10}, {6, 11}} {
		set(e[0], e[1], 3)
	}
	for _, e := range [][2]uint32{{5, 7}, {5, 8}, {5, 9}, {7, 8}, {7, 9}, {8, 9}} {
		set(e[0], e[1], 4)
	}
	for _, e := range [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}} {
		set(e[0], e[1], 5)
	}
	return want
}

func checkAgainstFig2(t *testing.T, name string, r *Result) {
	t.Helper()
	want := fig2Phi()
	if r.KMax != 5 {
		t.Fatalf("%s: kmax = %d, want 5", name, r.KMax)
	}
	for id, p := range r.Phi {
		e := r.G.Edge(int32(id))
		if want[e.Key()] != p {
			t.Fatalf("%s: edge %v phi = %d, want %d", name, e, p, want[e.Key()])
		}
	}
}

func TestPaperExampleClasses(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	checkAgainstFig2(t, "Decompose", Decompose(g))
	checkAgainstFig2(t, "DecomposeBaseline", DecomposeBaseline(g))
	checkAgainstFig2(t, "DecomposeNaive", DecomposeNaive(g))
}

func TestPaperExampleClassSizes(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	r := Decompose(g)
	sizes := r.ClassSizes()
	want := []int64{0, 0, 1, 9, 6, 10}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for k := range want {
		if sizes[k] != want[k] {
			t.Fatalf("|Phi_%d| = %d, want %d", k, sizes[k], want[k])
		}
	}
	if len(r.Class(2)) != 1 || len(r.Class(5)) != 10 {
		t.Fatal("Class extraction wrong")
	}
}

func TestPaperExampleTrusses(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	r := Decompose(g)
	// T3 = Phi3+Phi4+Phi5 = 25 edges, T4 = 16, T5 = 10.
	for _, tc := range []struct {
		k    int32
		want int
	}{{2, 26}, {3, 25}, {4, 16}, {5, 10}, {6, 0}} {
		tr := r.Truss(tc.k)
		if tr.NumEdges() != tc.want {
			t.Fatalf("T_%d has %d edges, want %d", tc.k, tr.NumEdges(), tc.want)
		}
	}
	mt := r.MaxTruss()
	if mt.NumEdges() != 10 {
		t.Fatalf("max truss edges = %d", mt.NumEdges())
	}
}

func TestVerifyOnPaperExample(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	r := Decompose(g)
	if err := Verify(r); err != nil {
		t.Fatal(err)
	}
	// Corrupt the result; Verify must notice.
	r.Phi[0]++
	if err := Verify(r); err == nil {
		t.Fatal("Verify accepted corrupted phi")
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	r := Decompose(empty)
	if r.KMax != 0 || len(r.Phi) != 0 {
		t.Fatal("empty graph")
	}
	if err := Verify(r); err != nil {
		t.Fatal(err)
	}
	// Single edge: phi = 2, kmax = 2.
	one := graph.FromEdges([]graph.Edge{{U: 0, V: 1}})
	r = Decompose(one)
	if r.KMax != 2 || r.Phi[0] != 2 {
		t.Fatalf("single edge: kmax=%d phi=%v", r.KMax, r.Phi)
	}
	// Triangle: every edge phi = 3.
	tri := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	r = Decompose(tri)
	if r.KMax != 3 {
		t.Fatalf("triangle kmax = %d", r.KMax)
	}
	for _, p := range r.Phi {
		if p != 3 {
			t.Fatalf("triangle phi = %v", r.Phi)
		}
	}
}

func TestCliqueTrussNumbers(t *testing.T) {
	// Every edge of K_n has phi = n.
	for n := 3; n <= 9; n++ {
		var edges []graph.Edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
			}
		}
		g := graph.FromEdges(edges)
		r := Decompose(g)
		if r.KMax != int32(n) {
			t.Fatalf("K_%d kmax = %d", n, r.KMax)
		}
		for _, p := range r.Phi {
			if p != int32(n) {
				t.Fatalf("K_%d phi = %v", n, r.Phi)
			}
		}
	}
}

func randomGraph(r *rand.Rand, n, m int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
	}
	return graph.FromEdges(edges)
}

func TestAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(50)
		m := r.Intn(5 * n)
		g := randomGraph(r, n, m)
		a := Decompose(g)
		b := DecomposeBaseline(g)
		c := DecomposeNaive(g)
		if err := EqualResults(a, b); err != nil {
			t.Fatalf("trial %d (n=%d m=%d): Alg2 vs Alg1: %v", trial, n, g.NumEdges(), err)
		}
		if err := EqualResults(a, c); err != nil {
			t.Fatalf("trial %d: Alg2 vs naive: %v", trial, err)
		}
	}
}

func TestDecomposeVerifiesQuick(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 4
		m := int(mRaw % 180)
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, n, m)
		return Verify(Decompose(g)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTrussContainedInCore(t *testing.T) {
	// Property from the paper (Sec 1): a k-truss is a (k-1)-core. So every
	// vertex of T_k must have core number >= k-1.
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 40, 200)
		tr := Decompose(g)
		co := kcore.Decompose(g)
		for id, p := range tr.Phi {
			e := g.Edge(int32(id))
			if co.Core[e.U] < p-1 || co.Core[e.V] < p-1 {
				t.Fatalf("edge %v phi=%d but cores %d,%d",
					e, p, co.Core[e.U], co.Core[e.V])
			}
		}
		// And kmax <= cmax + 1.
		if tr.KMax > co.CMax+1 {
			t.Fatalf("kmax %d > cmax+1 %d", tr.KMax, co.CMax+1)
		}
	}
}

func TestPlantedCliqueHasHighTruss(t *testing.T) {
	// A planted K8 inside random noise must keep phi >= 8 on... phi == 8
	// exactly requires the noise not to reinforce it; we assert >= 8.
	r := rand.New(rand.NewSource(123))
	var edges []graph.Edge
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
		}
	}
	for i := 0; i < 100; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(40)), V: uint32(r.Intn(40))})
	}
	g := graph.FromEdges(edges)
	res := Decompose(g)
	for i := uint32(0); i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			id, ok := g.EdgeID(i, j)
			if !ok {
				t.Fatal("clique edge missing")
			}
			if res.Phi[id] < 8 {
				t.Fatalf("clique edge (%d,%d) phi = %d < 8", i, j, res.Phi[id])
			}
		}
	}
}

func TestPeelerRestrict(t *testing.T) {
	// Triangle + pendant edge; restrict removals to the pendant edge only.
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}})
	sup := triangle.Supports(g)
	p := NewPeeler(g, sup)
	removable := make([]bool, g.NumEdges())
	pid, _ := g.EdgeID(2, 3)
	removable[pid] = true
	p.Restrict(removable)
	removed := p.PeelTo(10) // huge threshold, but only the pendant is removable
	if len(removed) != 1 || removed[0] != pid {
		t.Fatalf("removed = %v, want [%d]", removed, pid)
	}
	if p.AliveCount() != 3 {
		t.Fatalf("alive = %d, want 3", p.AliveCount())
	}
}

func TestPeelerCascade(t *testing.T) {
	// Two triangles sharing an edge: (0,1,2) and (1,2,3). Shared edge (1,2)
	// has support 2; others support 1. PeelTo(0) removes nothing;
	// PeelTo(1) cascades everything.
	g := graph.FromEdges([]graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
	})
	p := NewPeeler(g, triangle.Supports(g))
	if got := p.PeelTo(0); len(got) != 0 {
		t.Fatalf("PeelTo(0) removed %v", got)
	}
	if got := p.PeelTo(1); len(got) != 5 {
		t.Fatalf("PeelTo(1) removed %d edges, want all 5", len(got))
	}
	if p.AliveCount() != 0 {
		t.Fatal("edges left alive")
	}
}

func TestClassMapAndTrussEdges(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	r := Decompose(g)
	cm := r.ClassMap()
	if len(cm) != 26 {
		t.Fatalf("ClassMap size = %d", len(cm))
	}
	if cm[(graph.Edge{U: 8, V: 10}).Key()] != 2 {
		t.Fatal("ClassMap wrong for (i,k)")
	}
	ids := r.TrussEdges(5)
	if len(ids) != 10 {
		t.Fatalf("TrussEdges(5) = %d", len(ids))
	}
}

func TestEqualResultsDetectsMismatch(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	a := Decompose(g)
	b := Decompose(g)
	if err := EqualResults(a, b); err != nil {
		t.Fatal(err)
	}
	b.Phi[3]++
	if err := EqualResults(a, b); err == nil {
		t.Fatal("EqualResults accepted differing phi")
	}
	small := Decompose(graph.FromEdges([]graph.Edge{{U: 0, V: 1}}))
	if err := EqualResults(a, small); err == nil {
		t.Fatal("EqualResults accepted differing sizes")
	}
}
