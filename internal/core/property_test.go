package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// propertyGraphs yields the generator mix the truss-invariant property
// tests run over: uniform random, clique-planted, and hub-skewed graphs.
func propertyGraphs(r *rand.Rand, trial int) *graph.Graph {
	switch trial % 3 {
	case 0:
		n := 15 + r.Intn(60)
		return randomGraph(r, n, 3*n+r.Intn(5*n))
	case 1:
		n := 30 + r.Intn(40)
		g := randomGraph(r, n, 2*n)
		var edges []graph.Edge
		edges = append(edges, g.Edges()...)
		size := 6 + r.Intn(8)
		base := uint32(r.Intn(n - size))
		for i := uint32(0); i < uint32(size); i++ {
			for j := i + 1; j < uint32(size); j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j})
			}
		}
		return graph.FromEdges(edges)
	default:
		n := 40 + r.Intn(60)
		var edges []graph.Edge
		hub := uint32(0)
		for v := uint32(1); v < uint32(n); v++ {
			if r.Intn(3) > 0 {
				edges = append(edges, graph.Edge{U: hub, V: v})
			}
		}
		for i := 0; i < 4*n; i++ {
			edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
		}
		return graph.FromEdges(edges)
	}
}

// TestPKTTrussInvariants property-checks the PKT output against the
// k-truss definition directly, independent of any other engine:
//
//   - support: every edge of class k closes >= k-2 triangles whose edges
//     all lie in T_k,
//   - nesting: T_k is a superset of T_{k+1} for every k,
//   - kmax: the maximum class is KMax and is non-empty, and the whole
//     result passes the definitional checker in verify.go.
func TestPKTTrussInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	trials := 18
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		g := propertyGraphs(r, trial)
		res := DecomposePKT(g, 2+trial%7)
		m := g.NumEdges()

		// Support within T_k: count triangles restricted to the truss.
		for k := int32(3); k <= res.KMax; k++ {
			live := make([]bool, m)
			for id, p := range res.Phi {
				if p >= k {
					live[id] = true
				}
			}
			sup := supportsWithin(g, live)
			for id, p := range res.Phi {
				if p >= k && sup[id] < k-2 {
					t.Fatalf("trial %d: edge %v (phi %d) has %d < %d triangles within T_%d",
						trial, g.Edge(int32(id)), p, sup[id], k-2, k)
				}
			}
		}

		// Nesting: T_k ⊇ T_{k+1}, with strict shrink down to empty past
		// KMax.
		prev := res.TrussEdges(2)
		if len(prev) != m {
			t.Fatalf("trial %d: T_2 has %d edges, want all %d", trial, len(prev), m)
		}
		for k := int32(3); k <= res.KMax+1; k++ {
			cur := res.TrussEdges(k)
			in := make(map[int32]bool, len(prev))
			for _, e := range prev {
				in[e] = true
			}
			for _, e := range cur {
				if !in[e] {
					t.Fatalf("trial %d: edge %d in T_%d but not T_%d", trial, e, k, k-1)
				}
			}
			prev = cur
		}
		if res.KMax > 0 && len(res.Class(res.KMax)) == 0 {
			t.Fatalf("trial %d: kmax-class %d empty", trial, res.KMax)
		}
		if len(res.TrussEdges(res.KMax+1)) != 0 {
			t.Fatalf("trial %d: non-empty truss above kmax", trial)
		}

		// Full definitional check (membership + maximality) from
		// verify.go, plus the naive oracle.
		if err := Verify(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := EqualResults(DecomposeNaive(g), res); err != nil {
			t.Fatalf("trial %d vs naive oracle: %v", trial, err)
		}
	}
}
