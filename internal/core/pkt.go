package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/triangle"
)

// PKTStats describes the shape of one bulk-synchronous PKT run, for the
// observability layer and for tests that assert the machinery actually
// engaged (rounds > 0, both kernel strategies dispatched, ...).
type PKTStats struct {
	// Workers is the resolved worker count the run used.
	Workers int
	// Levels counts distinct populated peeling levels.
	Levels int
	// Rounds counts bulk-synchronous sub-rounds (barriers).
	Rounds int
	// FrontierEdges is the total number of edges peeled through frontiers
	// (equals m on a completed run).
	FrontierEdges int
	// PeakFrontier is the largest single sub-round frontier.
	PeakFrontier int
	// MergeDispatch and ProbeDispatch count the adaptive kernel's per-edge
	// strategy choices (merge-scan vs hash probe).
	MergeDispatch int64
	ProbeDispatch int64
}

// Edge lifecycle of the PKT state machine. Within one sub-round the dead
// set and the frontier set are frozen (transitions into them commit only
// at the barrier), which is what makes the workers' unsynchronized state
// reads safe.
const (
	pktAlive     = int32(0) // support above the peeling threshold, so far
	pktScheduled = int32(1) // crossed the threshold mid-round; next frontier
	pktFrontier  = int32(2) // dying in the current sub-round
	pktDead      = int32(3) // peeled; phi assigned
)

// pktSerialCutoff is the frontier size below which a sub-round runs on the
// coordinating goroutine: dispatching goroutines costs more than peeling a
// handful of edges.
const pktSerialCutoff = 256

// pktScanCutoff is the edge count below which frontier collection scans
// serially for the same reason.
const pktScanCutoff = 1 << 14

// DecomposePKT computes the same truss decomposition as Decompose with the
// bulk-synchronous parallel peeling algorithm of Kabir & Madduri's PKT.
// workers <= 0 selects GOMAXPROCS; workers == 1 falls back to the serial
// bin-sort peel (same answers, no atomics).
func DecomposePKT(g *graph.Graph, workers int) *Result {
	r, _ := DecomposePKTCtx(context.Background(), g, workers, Hooks{})
	return r
}

// DecomposePKTCtx is DecomposePKT with cancellation and observation. The
// context is checked at every barrier (between sub-rounds and between
// levels); hooks see each populated level and each sub-round. The only
// possible error is ctx.Err().
//
// Structure per level k (support threshold k-2):
//
//  1. Frontier collection: a chunked parallel scan marks every alive edge
//     at or below the threshold as the frontier, and tracks the minimum
//     surviving support so empty levels are jumped over in one step.
//  2. Sub-rounds: workers peel the frontier in dynamically balanced
//     chunks. Each worker enumerates a dying edge's surviving triangles
//     through the adaptive kernel (merge-scan or hash probe by degree
//     skew), atomically decrements the supports of the two partner edges
//     under the charging discipline below, and spills edges that cross
//     the threshold into a per-worker buffer — no shared append, no lock.
//  3. Barrier: the frontier commits to dead, the spill buffers become the
//     next frontier; when the cascade dries up the level is done.
//
// Charging discipline: a triangle dies in the sub-round where its first
// frontier edge dies. If one frontier edge kills it, that edge decrements
// both partners; if two frontier edges share it, the lower edge ID
// decrements the lone survivor; if all three die together nothing is
// decremented. Each dying triangle therefore decrements each surviving
// edge exactly once, so supports never double-decrement — the invariant
// that makes the answers exactly Decompose's.
func DecomposePKTCtx(ctx context.Context, g *graph.Graph, workers int, h Hooks) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := g.NumEdges()
	if m == 0 || workers == 1 {
		sup := triangle.Supports(g)
		return decomposePeel(ctx, g, sup, false, h)
	}

	res := &Result{G: g, Phi: make([]int32, m)}
	stats := &PKTStats{Workers: workers}
	res.PKT = stats

	// Degree-ordered CSR once, shared by support initialization; the
	// closing-edge hash once, shared by every peeling round.
	o := graph.BuildOrientedParallel(g, workers)
	supInit := triangle.SupportsOriented(o, workers)
	kern := triangle.NewKernel(g)

	sup := make([]atomic.Int32, m)
	for i, s := range supInit {
		sup[i].Store(s)
	}
	state := make([]atomic.Int32, m)

	dead := func(x int32) bool { return state[x].Load() == pktDead }

	// processEdge peels one frontier edge at level k, spilling edges that
	// cross the threshold into buf.
	processEdge := func(e int32, k int32, buf *[]int32) {
		res.Phi[e] = k
		ed := g.Edge(e)
		dec := func(x int32) {
			if sup[x].Add(-1) <= k-2 && state[x].CompareAndSwap(pktAlive, pktScheduled) {
				*buf = append(*buf, x)
			}
		}
		kern.ForEachLive(ed.U, ed.V, dead, func(p, q int32) {
			pin := state[p].Load() == pktFrontier
			qin := state[q].Load() == pktFrontier
			switch {
			case !pin && !qin:
				dec(p)
				dec(q)
			case pin && !qin:
				// Two frontier edges share the triangle; the smaller ID
				// charges the survivor.
				if e < p {
					dec(q)
				}
			case !pin && qin:
				if e < q {
					dec(p)
				}
				// default: all three dying; no survivor to charge.
			}
		})
	}

	// Per-worker reusable buffers: spill for mid-round threshold
	// crossings, scan for frontier collection.
	spill := make([][]int32, workers)
	scanBuf := make([][]int32, workers)
	scanMin := make([]int32, workers)

	// collect gathers the level-k frontier into cur and returns it with
	// the minimum support among surviving alive edges (MaxInt32 if none).
	collect := func(k int32, cur []int32) ([]int32, int32) {
		cur = cur[:0]
		scan := func(w int, lo, hi int32) {
			buf := scanBuf[w][:0]
			localMin := int32(math.MaxInt32)
			for e := lo; e < hi; e++ {
				if state[e].Load() != pktAlive {
					continue
				}
				if s := sup[e].Load(); s <= k-2 {
					state[e].Store(pktFrontier)
					buf = append(buf, e)
				} else if s < localMin {
					localMin = s
				}
			}
			scanBuf[w] = buf
			scanMin[w] = localMin
		}
		if m < pktScanCutoff {
			scan(0, 0, int32(m))
			return append(cur, scanBuf[0]...), scanMin[0]
		}
		var wg sync.WaitGroup
		chunk := int32((m + workers - 1) / workers)
		for w := 0; w < workers; w++ {
			lo := int32(w) * chunk
			hi := lo + chunk
			if hi > int32(m) {
				hi = int32(m)
			}
			if lo >= hi {
				scanBuf[w] = scanBuf[w][:0]
				scanMin[w] = math.MaxInt32
				continue
			}
			wg.Add(1)
			go func(w int, lo, hi int32) {
				defer wg.Done()
				scan(w, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		minSup := int32(math.MaxInt32)
		for w := 0; w < workers; w++ {
			cur = append(cur, scanBuf[w]...)
			if scanMin[w] < minSup {
				minSup = scanMin[w]
			}
		}
		return cur, minSup
	}

	done := ctx.Done()
	remaining := m
	k := int32(2)
	var cur, next []int32
	for remaining > 0 {
		if cancelled(done) {
			return nil, ctx.Err()
		}
		var minSup int32
		cur, minSup = collect(k, cur)
		if len(cur) == 0 {
			// Nothing peels at k: jump straight to the next populated
			// level (minSup > k-2 here, so this always advances).
			k = minSup + 2
			continue
		}
		if h.OnLevel != nil {
			h.OnLevel(k)
		}
		stats.Levels++
		for len(cur) > 0 {
			if cancelled(done) {
				return nil, ctx.Err()
			}
			stats.Rounds++
			stats.FrontierEdges += len(cur)
			if len(cur) > stats.PeakFrontier {
				stats.PeakFrontier = len(cur)
			}
			if h.OnRound != nil {
				h.OnRound(k, len(cur))
			}
			if len(cur) < pktSerialCutoff {
				buf := spill[0][:0]
				for _, e := range cur {
					processEdge(e, k, &buf)
				}
				spill[0] = buf
				for w := 1; w < workers; w++ {
					spill[w] = spill[w][:0]
				}
			} else {
				var idx atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						buf := spill[w][:0]
						const chunk = 64
						for {
							lo := int(idx.Add(chunk)) - chunk
							if lo >= len(cur) {
								break
							}
							hi := lo + chunk
							if hi > len(cur) {
								hi = len(cur)
							}
							for _, e := range cur[lo:hi] {
								processEdge(e, k, &buf)
							}
						}
						spill[w] = buf
					}(w)
				}
				wg.Wait()
			}
			remaining -= len(cur)
			// Barrier: the frontier dies, spilled edges become the next
			// frontier.
			for _, e := range cur {
				state[e].Store(pktDead)
			}
			next = next[:0]
			for w := 0; w < workers; w++ {
				next = append(next, spill[w]...)
			}
			for _, e := range next {
				state[e].Store(pktFrontier)
			}
			cur, next = next, cur
		}
		if remaining > 0 {
			k++
		}
	}
	res.KMax = k
	stats.MergeDispatch, stats.ProbeDispatch = kern.Dispatches()
	return res, nil
}
