package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/triangle"
)

// DecomposeNaive computes truss numbers straight from Definition 2: for
// each k starting at 3, repeatedly delete edges with fewer than k-2
// surviving triangles until a fixpoint, assigning phi = k-1 to edges
// deleted in phase k. It is O(kmax * m^1.5)-ish and exists purely as the
// test oracle for the optimized algorithms.
func DecomposeNaive(g *graph.Graph) *Result {
	m := g.NumEdges()
	res := &Result{G: g, Phi: make([]int32, m)}
	if m == 0 {
		return res
	}
	p := NewPeeler(g, triangle.Supports(g))
	remaining := m
	k := int32(2)
	for remaining > 0 {
		// Edges with support <= k-2 at this stage cannot be in T_{k+1};
		// they are exactly the k-class (all lower classes are gone).
		removed := p.PeelTo(k - 2)
		for _, e := range removed {
			res.Phi[e] = k
			remaining--
		}
		if remaining > 0 {
			k++
		}
	}
	res.KMax = k
	return res
}

// supportsWithin recomputes supports counting only triangles whose three
// edges are all in the live set.
func supportsWithin(g *graph.Graph, live []bool) []int32 {
	sup := make([]int32, g.NumEdges())
	triangle.ForEach(g, func(e1, e2, e3 int32) {
		if live[e1] && live[e2] && live[e3] {
			sup[e1]++
			sup[e2]++
			sup[e3]++
		}
	})
	return sup
}

// Verify checks a decomposition against the k-truss definition for every
// k in [3, KMax]:
//
//  1. Membership: in the subgraph T_k = {e : phi(e) >= k}, every edge is
//     contained in at least k-2 triangles of T_k.
//  2. Maximality: for every edge e with phi(e) = k-1 (i.e. excluded from
//     T_k), adding nothing — the peeling fixpoint from the full graph at
//     threshold k-2 must retain exactly T_k.
//
// It returns nil if the decomposition is a correct truss decomposition of
// r.G.
func Verify(r *Result) error {
	g := r.G
	m := g.NumEdges()
	if len(r.Phi) != m {
		return fmt.Errorf("core: phi has %d entries for %d edges", len(r.Phi), m)
	}
	for id, p := range r.Phi {
		if m > 0 && p < 2 {
			return fmt.Errorf("core: edge %d has phi %d < 2", id, p)
		}
		if p > r.KMax {
			return fmt.Errorf("core: edge %d has phi %d > kmax %d", id, p, r.KMax)
		}
	}
	for k := int32(3); k <= r.KMax; k++ {
		live := make([]bool, m)
		cnt := 0
		for id, p := range r.Phi {
			if p >= k {
				live[id] = true
				cnt++
			}
		}
		if k == r.KMax && cnt == 0 {
			return fmt.Errorf("core: kmax-class empty at k=%d", k)
		}
		sup := supportsWithin(g, live)
		for id := range live {
			if live[id] && sup[id] < k-2 {
				return fmt.Errorf("core: edge %v in T_%d has support %d < %d",
					g.Edge(int32(id)), k, sup[id], k-2)
			}
		}
		// Maximality: peel the whole graph at threshold k-2; the fixpoint
		// must equal T_k exactly.
		p := NewPeeler(g, triangle.Supports(g))
		p.PeelTo(k - 3)
		for id := range live {
			if p.Alive(int32(id)) != live[id] {
				return fmt.Errorf("core: edge %v: peeling fixpoint %v but phi=%d at k=%d",
					g.Edge(int32(id)), p.Alive(int32(id)), r.Phi[id], k)
			}
		}
	}
	return nil
}

// EqualResults reports whether two decompositions (possibly of graphs built
// with different edge ID orders) assign the same truss number to every
// canonical edge.
func EqualResults(a, b *Result) error {
	if a.G.NumEdges() != b.G.NumEdges() {
		return fmt.Errorf("core: edge counts differ: %d vs %d", a.G.NumEdges(), b.G.NumEdges())
	}
	if a.KMax != b.KMax {
		return fmt.Errorf("core: kmax differs: %d vs %d", a.KMax, b.KMax)
	}
	bm := b.ClassMap()
	for id, p := range a.Phi {
		e := a.G.Edge(int32(id))
		q, ok := bm[e.Key()]
		if !ok {
			return fmt.Errorf("core: edge %v missing from second result", e)
		}
		if p != q {
			return fmt.Errorf("core: edge %v: phi %d vs %d", e, p, q)
		}
	}
	return nil
}
