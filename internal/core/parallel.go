package core

import (
	"context"

	"repro/internal/graph"
)

// DecomposeParallel computes the same truss decomposition as Decompose on
// multiple cores. It is the engine behind truss.EngineParallel and
// delegates to the PKT bulk-synchronous peeling core (DecomposePKT):
// degree-ordered support initialization fanned across workers, then
// frontier rounds with atomic support decrements and per-worker spill
// buffers. workers <= 0 selects GOMAXPROCS; 1 runs the serial peel.
func DecomposeParallel(g *graph.Graph, workers int) *Result {
	return DecomposePKT(g, workers)
}

// DecomposeParallelCtx is DecomposeParallel with cancellation and
// observation; see DecomposePKTCtx for the barrier points where the
// context is polled.
func DecomposeParallelCtx(ctx context.Context, g *graph.Graph, workers int, h Hooks) (*Result, error) {
	return DecomposePKTCtx(ctx, g, workers, h)
}
