package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/triangle"
)

// DecomposeParallel computes the same truss decomposition as Decompose
// using level-synchronized parallel peeling (the shared-memory scheme of
// Kabir & Madduri's PKT, the natural multicore successor to Algorithm 2):
// supports are counted in parallel, then for each k the set of edges at or
// below support k-2 is peeled in sub-rounds, all edges of a sub-round in
// parallel with atomic support decrements. Each dying triangle is charged
// to exactly one frontier edge so supports never double-decrement.
// workers <= 0 selects GOMAXPROCS.
func DecomposeParallel(g *graph.Graph, workers int) *Result {
	r, _ := DecomposeParallelCtx(context.Background(), g, workers, Hooks{})
	return r
}

// DecomposeParallelCtx is DecomposeParallel with cancellation and
// observation: the context is checked between peeling sub-rounds (the
// barrier points of the level-synchronized scheme) and hooks see each
// level. The only possible error is ctx.Err().
func DecomposeParallelCtx(ctx context.Context, g *graph.Graph, workers int, h Hooks) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := g.NumEdges()
	if m == 0 || workers == 1 {
		sup := triangle.Supports(g)
		return decomposePeel(ctx, g, sup, false, h)
	}

	res := &Result{G: g, Phi: make([]int32, m)}
	supInit := triangle.SupportsParallel(g, workers)
	sup := make([]atomic.Int32, m)
	for i, s := range supInit {
		sup[i].Store(s)
	}

	// Edge lifecycle: alive -> frontier (dying at the current level's
	// sub-round) -> dead; edges discovered mid-sub-round are "scheduled"
	// and become the next sub-round's frontier.
	const (
		alive     = int32(0)
		frontier  = int32(1)
		dead      = int32(2)
		scheduled = int32(3)
	)
	state := make([]atomic.Int32, m)

	// processEdge peels one frontier edge at level k, applying the
	// charging rules and appending newly scheduled edges to buf.
	processEdge := func(e int32, k int32, buf *[]int32) {
		res.Phi[e] = k
		ed := g.Edge(e)
		u, v := ed.U, ed.V
		if g.Degree(u) > g.Degree(v) {
			u, v = v, u
		}
		nbrs := g.Neighbors(u)
		eids := g.IncidentEdges(u)
		for i, w := range nbrs {
			if w == v {
				continue
			}
			p := eids[i]
			if state[p].Load() == dead {
				continue
			}
			q, ok := g.EdgeID(v, w)
			if !ok || state[q].Load() == dead {
				continue
			}
			sp := state[p].Load()
			sq := state[q].Load()
			pin := sp == frontier
			qin := sq == frontier
			dec := func(x int32) {
				if sup[x].Add(-1) <= k-2 && state[x].CompareAndSwap(alive, scheduled) {
					*buf = append(*buf, x)
				}
			}
			switch {
			case !pin && !qin:
				dec(p)
				dec(q)
			case pin && !qin:
				// The triangle dies with both e and p this sub-round;
				// only the smaller of the two decrements the survivor.
				if e < p {
					dec(q)
				}
			case !pin && qin:
				if e < q {
					dec(p)
				}
			default:
				// All three edges dying this sub-round: no survivor.
			}
		}
	}

	done := ctx.Done()
	remaining := m
	k := int32(2)
	var cur []int32
	for remaining > 0 {
		if cancelled(done) {
			return nil, ctx.Err()
		}
		if h.OnLevel != nil {
			h.OnLevel(k)
		}
		// Collect the level-k frontier.
		cur = cur[:0]
		for e := 0; e < m; e++ {
			if state[e].Load() == alive && sup[e].Load() <= k-2 {
				state[e].Store(frontier)
				cur = append(cur, int32(e))
			}
		}
		for len(cur) > 0 {
			if cancelled(done) {
				return nil, ctx.Err()
			}
			var nextEdges []int32
			if len(cur) < 256 || workers == 1 {
				// Small frontiers: parallel dispatch costs more than it
				// saves.
				for _, e := range cur {
					processEdge(e, k, &nextEdges)
				}
			} else {
				bufs := make([][]int32, workers)
				var idx atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						const chunk = 64
						for {
							lo := int(idx.Add(chunk)) - chunk
							if lo >= len(cur) {
								return
							}
							hi := lo + chunk
							if hi > len(cur) {
								hi = len(cur)
							}
							for _, e := range cur[lo:hi] {
								processEdge(e, k, &bufs[w])
							}
						}
					}(w)
				}
				wg.Wait()
				for _, b := range bufs {
					nextEdges = append(nextEdges, b...)
				}
			}
			remaining -= len(cur)
			// Barrier: frontier dies; scheduled edges form the next
			// frontier.
			for _, e := range cur {
				state[e].Store(dead)
			}
			for _, e := range nextEdges {
				state[e].Store(frontier)
			}
			cur = nextEdges
		}
		if remaining > 0 {
			k++
		}
	}
	res.KMax = k
	return res, nil
}
