package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestDecomposePKTPaperExample(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	for _, workers := range []int{0, 2, 3, 4, 8} {
		checkAgainstFig2(t, "DecomposePKT", DecomposePKT(g, workers))
	}
}

func TestDecomposePKTMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1207))
	for trial := 0; trial < 30; trial++ {
		n := 10 + r.Intn(90)
		m := 2*n + r.Intn(6*n)
		g := randomGraph(r, n, m)
		want := Decompose(g)
		for _, workers := range []int{2, 4, 8} {
			got := DecomposePKT(g, workers)
			if err := EqualResults(want, got); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
		}
	}
}

// TestDecomposePKTDeepCascades drives multi-sub-round levels: overlapping
// cliques whose removal cascades across several barriers, with enough
// edges that the parallel dispatch path (frontiers above the serial
// cutoff) engages.
func TestDecomposePKTDeepCascades(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var edges []graph.Edge
	const n = 600
	for i := 0; i < 12000; i++ {
		edges = append(edges, graph.Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
	}
	for c := 0; c < 3; c++ {
		base := uint32(c * 40)
		for i := uint32(0); i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				edges = append(edges, graph.Edge{U: base + i, V: base + j})
			}
		}
	}
	g := graph.FromEdges(edges)
	want := Decompose(g)
	got := DecomposePKT(g, 8)
	if err := EqualResults(want, got); err != nil {
		t.Fatal(err)
	}
	if err := Verify(got); err != nil {
		t.Fatal(err)
	}
	// The machinery must actually have engaged: multiple levels, more
	// rounds than levels (cascades), every edge through a frontier.
	s := got.PKT
	if s == nil {
		t.Fatal("PKT stats missing on a multi-worker run")
	}
	if s.Workers != 8 || s.Levels < 3 || s.Rounds <= s.Levels {
		t.Fatalf("implausible PKT shape: %+v", *s)
	}
	if s.FrontierEdges != g.NumEdges() {
		t.Fatalf("frontier edges %d != m %d", s.FrontierEdges, g.NumEdges())
	}
	if s.PeakFrontier == 0 || s.MergeDispatch+s.ProbeDispatch != int64(g.NumEdges()) {
		t.Fatalf("kernel dispatches %d+%d don't cover m=%d: %+v",
			s.MergeDispatch, s.ProbeDispatch, g.NumEdges(), *s)
	}
}

// TestDecomposePKTSkewedHub forces the hash-probe dispatch: a hub adjacent
// to everything plus a sparse periphery gives edges with extreme endpoint
// degree skew.
func TestDecomposePKTSkewedHub(t *testing.T) {
	var edges []graph.Edge
	const n = 400
	for v := uint32(1); v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v}) // hub
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2*n; i++ {
		u, v := uint32(1+r.Intn(n-1)), uint32(1+r.Intn(n-1))
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g := graph.FromEdges(edges)
	want := Decompose(g)
	got := DecomposePKT(g, 4)
	if err := EqualResults(want, got); err != nil {
		t.Fatal(err)
	}
	if got.PKT.ProbeDispatch == 0 {
		t.Fatalf("hub graph never dispatched the probe kernel: %+v", *got.PKT)
	}
}

func TestDecomposePKTTrivial(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	if r := DecomposePKT(empty, 4); r.KMax != 0 {
		t.Fatal("empty graph")
	}
	// Triangle-free: everything peels at k=2 in one level.
	path := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if r := DecomposePKT(path, 4); r.KMax != 2 {
		t.Fatalf("path kmax = %d", r.KMax)
	}
	tri := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if r := DecomposePKT(tri, 4); r.KMax != 3 {
		t.Fatalf("triangle kmax = %d", r.KMax)
	}
	// A single k-clique is one k-class: exercises the empty-level jump
	// from 2 straight to k.
	var clique []graph.Edge
	for i := uint32(0); i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			clique = append(clique, graph.Edge{U: i, V: j})
		}
	}
	if r := DecomposePKT(graph.FromEdges(clique), 4); r.KMax != 9 {
		t.Fatalf("K9 kmax = %d", r.KMax)
	}
}

func TestDecomposePKTCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.FromEdges(fig2Edges())
	if _, err := DecomposePKTCtx(ctx, g, 4, Hooks{}); err == nil {
		t.Fatal("pre-cancelled context should abort the run")
	}
}

func TestDecomposePKTHooks(t *testing.T) {
	g := graph.FromEdges(fig2Edges())
	var levels []int32
	rounds := 0
	frontierTotal := 0
	h := Hooks{
		OnLevel: func(k int32) { levels = append(levels, k) },
		OnRound: func(k int32, frontier int) {
			rounds++
			frontierTotal += frontier
			if frontier == 0 {
				t.Fatal("empty frontier announced to OnRound")
			}
		},
	}
	r, err := DecomposePKTCtx(context.Background(), g, 4, h)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2 has classes 2..5: four populated levels, ascending.
	if len(levels) != 4 {
		t.Fatalf("levels seen: %v", levels)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatalf("levels not ascending: %v", levels)
		}
	}
	if rounds != r.PKT.Rounds || frontierTotal != g.NumEdges() {
		t.Fatalf("hook rounds %d (stats %d), frontier total %d (m %d)",
			rounds, r.PKT.Rounds, frontierTotal, g.NumEdges())
	}
}

// TestPKTConcurrentPeelStress is the dedicated race-job stress test: many
// workers against small graphs, repeatedly, plus concurrent independent
// runs over one shared graph — the shapes that flush out frontier/atomics
// races under -race.
func TestPKTConcurrentPeelStress(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	r := rand.New(rand.NewSource(555))
	for trial := 0; trial < iters; trial++ {
		n := 20 + r.Intn(60)
		m := 3*n + r.Intn(5*n)
		g := randomGraph(r, n, m)
		want := Decompose(g)
		for _, workers := range []int{4, 16} {
			got := DecomposePKT(g, workers)
			if err := EqualResults(want, got); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
		}
	}

	// Concurrent runs sharing one graph: the Graph and the kernel inputs
	// are read-only; each run must stay independent.
	g := graph.FromEdges(fig2Edges())
	want := Decompose(g)
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := EqualResults(want, DecomposePKT(g, 4)); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
