// Package dsu provides the disjoint-set forest (union-find) shared by the
// community detector and the truss index, both of which group edges into
// triangle-connected components.
package dsu

// UnionFind is a disjoint-set forest with path halving over dense int32
// element IDs. The zero value is not usable; call New.
type UnionFind struct {
	parent []int32
}

// New returns a forest of n singleton sets.
func New(n int) *UnionFind {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &UnionFind{parent: p}
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b.
func (u *UnionFind) Union(a, b int32) {
	ra, rb := u.Find(a), u.Find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}
