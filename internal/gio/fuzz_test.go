package gio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

// FuzzScanTextEdges throws arbitrary bytes at the SNAP text parser. The
// contract under fuzzing: never panic, never yield a non-canonical edge
// or a self-loop, and accept-or-reject deterministically.
func FuzzScanTextEdges(f *testing.F) {
	for _, seed := range []string{
		"0 1\n1 2\n",
		"# comment\n% comment\n\n  3\t4  \n",
		"1 2 extra columns\n",
		"0 1\r\n2 3\r\n",           // CRLF line endings
		"4294967295 0\n",           // max uint32
		"4294967296 0\n",           // one past uint32
		"99999999999999999999 1\n", // overflows int64
		"-5 2\n",
		"a b\n",
		"7\n",
		"1 1\n",        // self-loop
		"0 1",          // no trailing newline
		"\x00\x01 2\n", // binary junk
		strings.Repeat("9", 5000) + " 1\n",
		"1 " + strings.Repeat("2", 5000) + "\n",
		strings.Repeat("x", 2000000) + "\n", // longer than the scanner buffer
		"0 1\n",                             // non-breaking space is not a separator
		"+3 4\n",
		"0x10 1\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		err := ScanTextEdges(bytes.NewReader(data), func(e graph.Edge) error {
			if e.U >= e.V {
				t.Fatalf("parser yielded non-canonical edge %v", e)
			}
			return nil
		})
		// Parse errors are fine; panics and bad edges are not. But a
		// successful parse must be repeatable (determinism guard).
		if err == nil {
			if err2 := ScanTextEdges(bytes.NewReader(data), func(graph.Edge) error { return nil }); err2 != nil {
				t.Fatalf("accepted once, rejected on re-parse: %v", err2)
			}
		}
	})
}

// FuzzBinaryEdgeReader feeds arbitrary bytes to the binary record reader:
// it must stop cleanly at EOF or a truncated record, never panic.
func FuzzBinaryEdgeReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader[EdgeRec](bytes.NewReader(data), EdgeCodec{}, nil)
		n := 0
		err := rd.ForEach(func(EdgeRec) error {
			n++
			return nil
		})
		if err == nil && n != len(data)/8 {
			t.Fatalf("read %d records from %d bytes", n, len(data))
		}
	})
}
