// Package gio is the disk substrate for the external-memory algorithms: it
// provides buffered streams of fixed-size binary records with I/O
// accounting in the Aggarwal-Vitter model the paper adopts (Section 2):
// data is moved in blocks of B bytes and scan(N) = Theta(N/B).
//
// Record streams are generic over a Codec that encodes records into a fixed
// number of bytes. The external-memory truss algorithms store residual
// graphs as streams of (u, v, aux...) records and re-scan/re-write them, so
// every byte moved through this package is counted in a Stats sink, letting
// the benchmark harness report scan counts and I/Os alongside wall time.
package gio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/graph"
)

// DefaultBufSize is the buffer used for record streams when none is given.
const DefaultBufSize = 1 << 16

// DefaultBlockSize is the block size B used for I/O accounting.
const DefaultBlockSize = 4096

// Stats accumulates I/O volume. It is safe for concurrent use.
type Stats struct {
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	readOps      atomic.Int64
	writeOps     atomic.Int64
}

// AddRead records n bytes read in one operation.
func (s *Stats) AddRead(n int) {
	if s == nil {
		return
	}
	s.bytesRead.Add(int64(n))
	s.readOps.Add(1)
}

// AddWrite records n bytes written in one operation.
func (s *Stats) AddWrite(n int) {
	if s == nil {
		return
	}
	s.bytesWritten.Add(int64(n))
	s.writeOps.Add(1)
}

// BytesRead returns total bytes read through this sink.
func (s *Stats) BytesRead() int64 { return s.bytesRead.Load() }

// BytesWritten returns total bytes written through this sink.
func (s *Stats) BytesWritten() int64 { return s.bytesWritten.Load() }

// IOs returns the number of block transfers of size blockSize implied by
// the recorded traffic, i.e. ceil(read/B) + ceil(write/B).
func (s *Stats) IOs(blockSize int) int64 {
	b := int64(blockSize)
	if b <= 0 {
		b = DefaultBlockSize
	}
	ceil := func(x int64) int64 { return (x + b - 1) / b }
	return ceil(s.bytesRead.Load()) + ceil(s.bytesWritten.Load())
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.bytesRead.Store(0)
	s.bytesWritten.Store(0)
	s.readOps.Store(0)
	s.writeOps.Store(0)
}

func (s *Stats) String() string {
	if s == nil {
		return "io{untracked}"
	}
	return fmt.Sprintf("io{read=%dB write=%dB ios(B=%d)=%d}",
		s.BytesRead(), s.BytesWritten(), DefaultBlockSize, s.IOs(DefaultBlockSize))
}

// Codec encodes and decodes fixed-size records.
type Codec[T any] interface {
	// Size returns the fixed encoded size in bytes.
	Size() int
	// Encode writes rec into buf, which has at least Size() bytes.
	Encode(buf []byte, rec T)
	// Decode reads a record from buf, which has at least Size() bytes.
	Decode(buf []byte) T
}

// EdgeRec is a bare undirected edge record (8 bytes).
type EdgeRec struct {
	U, V uint32
}

// Edge converts the record to a graph.Edge.
func (r EdgeRec) Edge() graph.Edge { return graph.Edge{U: r.U, V: r.V} }

// EdgeCodec encodes EdgeRec as two little-endian uint32s.
type EdgeCodec struct{}

func (EdgeCodec) Size() int { return 8 }

func (EdgeCodec) Encode(buf []byte, r EdgeRec) {
	binary.LittleEndian.PutUint32(buf, r.U)
	binary.LittleEndian.PutUint32(buf[4:], r.V)
}

func (EdgeCodec) Decode(buf []byte) EdgeRec {
	return EdgeRec{
		U: binary.LittleEndian.Uint32(buf),
		V: binary.LittleEndian.Uint32(buf[4:]),
	}
}

// EdgeAux is an edge with one 32-bit attribute (12 bytes): the bottom-up
// residual graph stores the lower bound phi(e) here, the top-down pipeline
// stores sup(e).
type EdgeAux struct {
	U, V uint32
	Aux  int32
}

// Edge converts the record to a graph.Edge.
func (r EdgeAux) Edge() graph.Edge { return graph.Edge{U: r.U, V: r.V} }

// Key returns the canonical 64-bit edge key.
func (r EdgeAux) Key() uint64 { return r.Edge().Key() }

// EdgeAuxCodec encodes EdgeAux in 12 bytes.
type EdgeAuxCodec struct{}

func (EdgeAuxCodec) Size() int { return 12 }

func (EdgeAuxCodec) Encode(buf []byte, r EdgeAux) {
	binary.LittleEndian.PutUint32(buf, r.U)
	binary.LittleEndian.PutUint32(buf[4:], r.V)
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.Aux))
}

func (EdgeAuxCodec) Decode(buf []byte) EdgeAux {
	return EdgeAux{
		U:   binary.LittleEndian.Uint32(buf),
		V:   binary.LittleEndian.Uint32(buf[4:]),
		Aux: int32(binary.LittleEndian.Uint32(buf[8:])),
	}
}

// EdgeAux2 is an edge with two 32-bit attributes (16 bytes): the top-down
// pipeline stores (sup, psi) or (psi, phi) pairs.
type EdgeAux2 struct {
	U, V uint32
	A, B int32
}

// Edge converts the record to a graph.Edge.
func (r EdgeAux2) Edge() graph.Edge { return graph.Edge{U: r.U, V: r.V} }

// Key returns the canonical 64-bit edge key.
func (r EdgeAux2) Key() uint64 { return r.Edge().Key() }

// EdgeAux2Codec encodes EdgeAux2 in 16 bytes.
type EdgeAux2Codec struct{}

func (EdgeAux2Codec) Size() int { return 16 }

func (EdgeAux2Codec) Encode(buf []byte, r EdgeAux2) {
	binary.LittleEndian.PutUint32(buf, r.U)
	binary.LittleEndian.PutUint32(buf[4:], r.V)
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.A))
	binary.LittleEndian.PutUint32(buf[12:], uint32(r.B))
}

func (EdgeAux2Codec) Decode(buf []byte) EdgeAux2 {
	return EdgeAux2{
		U: binary.LittleEndian.Uint32(buf),
		V: binary.LittleEndian.Uint32(buf[4:]),
		A: int32(binary.LittleEndian.Uint32(buf[8:])),
		B: int32(binary.LittleEndian.Uint32(buf[12:])),
	}
}

// countingWriter wraps an io.Writer and reports traffic to Stats.
type countingWriter struct {
	w  io.Writer
	st *Stats
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.st.AddWrite(n)
	return n, err
}

// countingReader wraps an io.Reader and reports traffic to Stats.
type countingReader struct {
	r  io.Reader
	st *Stats
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.st.AddRead(n)
	}
	return n, err
}

// Writer writes a stream of fixed-size records with buffering.
type Writer[T any] struct {
	bw    *bufio.Writer
	codec Codec[T]
	buf   []byte
	count int64
	inner io.Closer
}

// NewWriter wraps w. If st is non-nil, flushed bytes are counted there.
// If w is also an io.Closer, Close closes it.
func NewWriter[T any](w io.Writer, codec Codec[T], st *Stats) *Writer[T] {
	var cw io.Writer = w
	if st != nil {
		cw = countingWriter{w, st}
	}
	out := &Writer[T]{
		bw:    bufio.NewWriterSize(cw, DefaultBufSize),
		codec: codec,
		buf:   make([]byte, codec.Size()),
	}
	if c, ok := w.(io.Closer); ok {
		out.inner = c
	}
	return out
}

// Write appends one record.
func (w *Writer[T]) Write(rec T) error {
	w.codec.Encode(w.buf, rec)
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer[T]) Count() int64 { return w.count }

// Flush flushes buffered data to the underlying writer.
func (w *Writer[T]) Flush() error { return w.bw.Flush() }

// Close flushes and closes the underlying writer if it is a Closer.
func (w *Writer[T]) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.inner != nil {
		return w.inner.Close()
	}
	return nil
}

// Reader reads a stream of fixed-size records with buffering.
type Reader[T any] struct {
	br    *bufio.Reader
	codec Codec[T]
	buf   []byte
	inner io.Closer
}

// NewReader wraps r. If st is non-nil, bytes read are counted there.
// If r is also an io.Closer, Close closes it.
func NewReader[T any](r io.Reader, codec Codec[T], st *Stats) *Reader[T] {
	var cr io.Reader = r
	if st != nil {
		cr = countingReader{r, st}
	}
	out := &Reader[T]{
		br:    bufio.NewReaderSize(cr, DefaultBufSize),
		codec: codec,
		buf:   make([]byte, codec.Size()),
	}
	if c, ok := r.(io.Closer); ok {
		out.inner = c
	}
	return out
}

// Read returns the next record, or io.EOF at the end of the stream. A
// truncated trailing record yields io.ErrUnexpectedEOF.
func (r *Reader[T]) Read() (T, error) {
	var zero T
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		if errors.Is(err, io.EOF) {
			return zero, io.EOF
		}
		return zero, err
	}
	return r.codec.Decode(r.buf), nil
}

// ForEach reads every remaining record, invoking fn. It stops at EOF or on
// the first error from fn.
func (r *Reader[T]) ForEach(fn func(T) error) error {
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Close closes the underlying reader if it is a Closer.
func (r *Reader[T]) Close() error {
	if r.inner != nil {
		return r.inner.Close()
	}
	return nil
}

// ScanTextEdges streams a whitespace-separated edge list (the SNAP dataset
// format): one "u v" pair per line, lines beginning with '#' or '%' are
// comments. Each canonical edge is passed to fn as it is parsed — nothing
// is accumulated, so arbitrarily large files scan in O(1) memory.
// Self-loops are dropped; duplicates are kept (callers deduplicate).
func ScanTextEdges(r io.Reader, fn func(graph.Edge) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return fmt.Errorf("gio: line %d: expected two vertex IDs, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("gio: line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("gio: line %d: %v", line, err)
		}
		if err := graph.CheckVertexRange(u); err != nil {
			return fmt.Errorf("gio: line %d: %v", line, err)
		}
		if err := graph.CheckVertexRange(v); err != nil {
			return fmt.Errorf("gio: line %d: %v", line, err)
		}
		if u == v {
			continue
		}
		if err := fn(graph.Edge{U: uint32(u), V: uint32(v)}.Canon()); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("gio: scan: %v", err)
	}
	return nil
}

// ReadTextEdges parses a SNAP edge list into memory; see ScanTextEdges for
// the format (and for the streaming variant the external pipelines use).
func ReadTextEdges(r io.Reader) ([]graph.Edge, error) {
	var edges []graph.Edge
	err := ScanTextEdges(r, func(e graph.Edge) error {
		edges = append(edges, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return edges, nil
}

// WriteTextEdges writes edges in the SNAP text format.
func WriteTextEdges(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadGraph reads a graph from path. Files ending in ".bin" are read as
// binary EdgeRec streams; anything else is parsed as SNAP text.
func LoadGraph(path string, st *Stats) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		rd := NewReader[EdgeRec](f, EdgeCodec{}, st)
		b := graph.NewBuilder(1024)
		err := rd.ForEach(func(r EdgeRec) error {
			b.AddEdge(r.U, r.V)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return b.Build(), nil
	}
	edges, err := ReadTextEdges(f)
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(edges), nil
}

// SaveGraph writes g's edges to path, choosing format by extension as in
// LoadGraph.
func SaveGraph(path string, g *graph.Graph, st *Stats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".bin") {
		w := NewWriter[EdgeRec](f, EdgeCodec{}, st)
		for _, e := range g.Edges() {
			if err := w.Write(EdgeRec{e.U, e.V}); err != nil {
				f.Close()
				return err
			}
		}
		return w.Close()
	}
	if err := WriteTextEdges(f, g.Edges()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
