package gio

import (
	"encoding/binary"

	"repro/internal/graph"
)

// EdgeRec5 is the top-down pipeline's residual record (20 bytes): an edge
// with its exact support, its truss-number upper bound psi, and its
// classification (Phi = 0 while the truss number is unknown, the class k
// once assigned).
type EdgeRec5 struct {
	U, V uint32
	Sup  int32
	Psi  int32
	Phi  int32
}

// Edge converts the record to a graph.Edge.
func (r EdgeRec5) Edge() graph.Edge { return graph.Edge{U: r.U, V: r.V} }

// Key returns the canonical 64-bit edge key.
func (r EdgeRec5) Key() uint64 { return r.Edge().Key() }

// Classified reports whether the edge's truss number has been assigned.
func (r EdgeRec5) Classified() bool { return r.Phi != 0 }

// EdgeRec5Codec encodes EdgeRec5 in 20 bytes.
type EdgeRec5Codec struct{}

func (EdgeRec5Codec) Size() int { return 20 }

func (EdgeRec5Codec) Encode(buf []byte, r EdgeRec5) {
	binary.LittleEndian.PutUint32(buf, r.U)
	binary.LittleEndian.PutUint32(buf[4:], r.V)
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.Sup))
	binary.LittleEndian.PutUint32(buf[12:], uint32(r.Psi))
	binary.LittleEndian.PutUint32(buf[16:], uint32(r.Phi))
}

func (EdgeRec5Codec) Decode(buf []byte) EdgeRec5 {
	return EdgeRec5{
		U:   binary.LittleEndian.Uint32(buf),
		V:   binary.LittleEndian.Uint32(buf[4:]),
		Sup: int32(binary.LittleEndian.Uint32(buf[8:])),
		Psi: int32(binary.LittleEndian.Uint32(buf[12:])),
		Phi: int32(binary.LittleEndian.Uint32(buf[16:])),
	}
}
