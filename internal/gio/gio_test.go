package gio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestEdgeCodecRoundTrip(t *testing.T) {
	c := EdgeCodec{}
	buf := make([]byte, c.Size())
	r := EdgeRec{U: 12345, V: 4294967295}
	c.Encode(buf, r)
	if got := c.Decode(buf); got != r {
		t.Fatalf("round trip: got %v, want %v", got, r)
	}
}

func TestEdgeAuxCodecRoundTrip(t *testing.T) {
	c := EdgeAuxCodec{}
	buf := make([]byte, c.Size())
	r := EdgeAux{U: 7, V: 9, Aux: -42}
	c.Encode(buf, r)
	if got := c.Decode(buf); got != r {
		t.Fatalf("round trip: got %v, want %v", got, r)
	}
}

func TestEdgeAux2CodecRoundTrip(t *testing.T) {
	c := EdgeAux2Codec{}
	buf := make([]byte, c.Size())
	r := EdgeAux2{U: 1, V: 2, A: -3, B: 1 << 30}
	c.Encode(buf, r)
	if got := c.Decode(buf); got != r {
		t.Fatalf("round trip: got %v, want %v", got, r)
	}
}

func TestCodecQuick(t *testing.T) {
	c := EdgeAux2Codec{}
	buf := make([]byte, c.Size())
	f := func(u, v uint32, a, b int32) bool {
		r := EdgeAux2{u, v, a, b}
		c.Encode(buf, r)
		return c.Decode(buf) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReaderStream(t *testing.T) {
	var st Stats
	var buf bytes.Buffer
	w := NewWriter[EdgeRec](&buf, EdgeCodec{}, &st)
	recs := []EdgeRec{{1, 2}, {3, 4}, {5, 6}}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if st.BytesWritten() != 24 {
		t.Fatalf("BytesWritten = %d, want 24", st.BytesWritten())
	}

	r := NewReader[EdgeRec](bytes.NewReader(buf.Bytes()), EdgeCodec{}, &st)
	for i := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != recs[i] {
			t.Fatalf("record %d: got %v, want %v", i, got, recs[i])
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
	if st.BytesRead() != 24 {
		t.Fatalf("BytesRead = %d, want 24", st.BytesRead())
	}
}

func TestReaderTruncated(t *testing.T) {
	data := make([]byte, 10) // not a multiple of 8
	r := NewReader[EdgeRec](bytes.NewReader(data), EdgeCodec{}, nil)
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record should parse: %v", err)
	}
	if _, err := r.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestStatsIOs(t *testing.T) {
	var st Stats
	st.AddRead(4096)
	st.AddRead(1)
	st.AddWrite(8192)
	if got := st.IOs(4096); got != 2+2 {
		t.Fatalf("IOs = %d, want 4", got)
	}
	if got := st.IOs(0); got <= 0 {
		t.Fatal("IOs with invalid block size should use default")
	}
	if !strings.Contains(st.String(), "read=4097B") {
		t.Fatalf("String = %q", st.String())
	}
	st.Reset()
	if st.BytesRead() != 0 || st.BytesWritten() != 0 {
		t.Fatal("Reset failed")
	}
	var nilStats *Stats
	nilStats.AddRead(1) // must not panic
	if nilStats.String() != "io{untracked}" {
		t.Fatal("nil Stats String")
	}
}

func TestReadTextEdges(t *testing.T) {
	in := `# comment
% also comment

0 1
1	2
2 2
3 1
`
	edges, err := ReadTextEdges(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
}

func TestReadTextEdgesErrors(t *testing.T) {
	if _, err := ReadTextEdges(strings.NewReader("0\n")); err == nil {
		t.Fatal("expected error for missing field")
	}
	if _, err := ReadTextEdges(strings.NewReader("a b\n")); err == nil {
		t.Fatal("expected error for non-numeric")
	}
	if _, err := ReadTextEdges(strings.NewReader("0 99999999999\n")); err == nil {
		t.Fatal("expected range error")
	}
}

func TestWriteTextEdgesRoundTrip(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 5}}
	var buf bytes.Buffer
	if err := WriteTextEdges(&buf, edges); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTextEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != edges[0] || back[1] != edges[1] {
		t.Fatalf("round trip = %v", back)
	}
}

func TestSaveLoadGraphBothFormats(t *testing.T) {
	dir := t.TempDir()
	g := graph.FromEdges([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveGraph(path, g, nil); err != nil {
			t.Fatal(err)
		}
		back, err := LoadGraph(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumEdges() != g.NumEdges() || back.NumVertices() != g.NumVertices() {
			t.Fatalf("%s: loaded n=%d m=%d", name, back.NumVertices(), back.NumEdges())
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.U, e.V) {
				t.Fatalf("%s: missing edge %v", name, e)
			}
		}
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.bin"), nil); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSpoolLifecycle(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpool[EdgeAux](dir, "test", EdgeAuxCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh spool is empty.
	recs, err := sp.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh spool has %d records", len(recs))
	}
	in := []EdgeAux{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if err := sp.WriteAll(in); err != nil {
		t.Fatal(err)
	}
	if sp.Count() != 3 {
		t.Fatalf("Count = %d", sp.Count())
	}
	out, err := sp.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: %v != %v", i, out[i], in[i])
		}
	}
	sz, err := sp.SizeBytes()
	if err != nil || sz != 36 {
		t.Fatalf("SizeBytes = %d, %v", sz, err)
	}

	// Rewrite generation and atomic replace.
	next, err := NewSpool[EdgeAux](dir, "next", EdgeAuxCodec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.WriteAll(in[:1]); err != nil {
		t.Fatal(err)
	}
	if err := sp.ReplaceWith(next); err != nil {
		t.Fatal(err)
	}
	if sp.Count() != 1 {
		t.Fatalf("after replace Count = %d", sp.Count())
	}
	if err := sp.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sp.Path()); !os.IsNotExist(err) {
		t.Fatal("file should be gone")
	}
}

func TestSpoolLargeStream(t *testing.T) {
	dir := t.TempDir()
	var st Stats
	sp, err := NewSpool[EdgeRec](dir, "large", EdgeCodec{}, &st)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	const n = 50000
	w, err := sp.Create()
	if err != nil {
		t.Fatal(err)
	}
	sum := uint64(0)
	for i := 0; i < n; i++ {
		rec := EdgeRec{r.Uint32(), r.Uint32()}
		sum += uint64(rec.U) + uint64(rec.V)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := uint64(0)
	cnt := 0
	err = sp.ForEach(func(rec EdgeRec) error {
		got += uint64(rec.U) + uint64(rec.V)
		cnt++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n || got != sum {
		t.Fatalf("scan mismatch: count=%d sum=%d want %d/%d", cnt, got, n, sum)
	}
	if st.BytesWritten() != int64(8*n) || st.BytesRead() != int64(8*n) {
		t.Fatalf("stats: %v", &st)
	}
}
