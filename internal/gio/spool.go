package gio

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// A Spool is a disk-resident sequence of fixed-size records backed by a file
// in a temp directory. The external-memory algorithms keep their residual
// graphs (Gnew in the paper) and run files in spools: a spool is written
// once per pass (Create), then scanned any number of times (Open), and can
// be atomically replaced by a rewritten successor (ReplaceWith).
type Spool[T any] struct {
	path  string
	codec Codec[T]
	st    *Stats
	count int64
}

var spoolSeq atomic.Int64

// NewSpool creates an empty spool file in dir (or os.TempDir() if dir is
// empty) with the given name hint. The file is created immediately so that
// Open on a fresh spool yields an empty stream.
func NewSpool[T any](dir, hint string, codec Codec[T], st *Stats) (*Spool[T], error) {
	if dir == "" {
		dir = os.TempDir()
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.spool", hint, spoolSeq.Add(1)))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return &Spool[T]{path: path, codec: codec, st: st}, nil
}

// Path returns the backing file path.
func (s *Spool[T]) Path() string { return s.path }

// Count returns the number of records in the spool as of the last committed
// write.
func (s *Spool[T]) Count() int64 { return s.count }

// SpoolWriter writes a new generation of spool contents. Close commits the
// record count to the spool.
type SpoolWriter[T any] struct {
	*Writer[T]
	spool *Spool[T]
}

// Close flushes, closes the file, and commits the record count.
func (w *SpoolWriter[T]) Close() error {
	if err := w.Writer.Close(); err != nil {
		return err
	}
	w.spool.count = w.Writer.Count()
	return nil
}

// Create truncates the spool and returns a writer for its new contents.
func (s *Spool[T]) Create() (*SpoolWriter[T], error) {
	f, err := os.Create(s.path)
	if err != nil {
		return nil, err
	}
	return &SpoolWriter[T]{Writer: NewWriter(f, s.codec, s.st), spool: s}, nil
}

// Open returns a reader over the spool contents. Multiple concurrent
// readers are allowed; do not mix with an active writer.
func (s *Spool[T]) Open() (*Reader[T], error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, err
	}
	return NewReader(f, s.codec, s.st), nil
}

// ForEach scans the whole spool, invoking fn on each record.
func (s *Spool[T]) ForEach(fn func(T) error) error {
	r, err := s.Open()
	if err != nil {
		return err
	}
	defer r.Close()
	return r.ForEach(fn)
}

// WriteAll replaces the spool contents with recs.
func (s *Spool[T]) WriteAll(recs []T) error {
	w, err := s.Create()
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// ReadAll loads the whole spool into memory. Intended for tests and for
// final stages known to fit in the memory budget.
func (s *Spool[T]) ReadAll() ([]T, error) {
	out := make([]T, 0, s.count)
	err := s.ForEach(func(r T) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReplaceWith atomically replaces s's contents with those of other by
// renaming other's file over s's. other becomes invalid afterwards.
func (s *Spool[T]) ReplaceWith(other *Spool[T]) error {
	if err := os.Rename(other.path, s.path); err != nil {
		return err
	}
	s.count = other.count
	return nil
}

// Remove deletes the backing file.
func (s *Spool[T]) Remove() error { return os.Remove(s.path) }

// SizeBytes returns the current byte size of the backing file.
func (s *Spool[T]) SizeBytes() (int64, error) {
	fi, err := os.Stat(s.path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
