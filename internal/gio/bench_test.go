package gio

import (
	"testing"
)

func BenchmarkSpoolWriteRead(b *testing.B) {
	dir := b.TempDir()
	sp, err := NewSpool[EdgeAux2](dir, "bench", EdgeAux2Codec{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	const recs = 100000
	b.SetBytes(recs * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := sp.Create()
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < recs; j++ {
			if err := w.Write(EdgeAux2{U: uint32(j), V: uint32(j + 1), A: 1, B: 2}); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		count := 0
		if err := sp.ForEach(func(EdgeAux2) error { count++; return nil }); err != nil {
			b.Fatal(err)
		}
		if count != recs {
			b.Fatalf("count = %d", count)
		}
	}
}

func BenchmarkCodecEncodeDecode(b *testing.B) {
	c := EdgeAux2Codec{}
	buf := make([]byte, c.Size())
	rec := EdgeAux2{U: 1, V: 2, A: 3, B: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(buf, rec)
		if got := c.Decode(buf); got.U != 1 {
			b.Fatal("decode mismatch")
		}
	}
}
